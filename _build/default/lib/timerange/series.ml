type 'a t = (Span.t * 'a) array

let empty = [||]
let is_empty s = Array.length s = 0

let compare_event (sa, _) (sb, _) = Span.compare sa sb

let of_list events =
  let a = Array.of_list events in
  Array.stable_sort compare_event a;
  a

let to_list = Array.to_list
let cardinal = Array.length
let to_span_set s = Span_set.of_spans (List.map fst (to_list s))
let size s = Span_set.size (to_span_set s)
let map f s = Array.map (fun (sp, x) -> (sp, f x)) s

let map_spans f s =
  let a = Array.map (fun (sp, x) -> (f sp, x)) s in
  Array.stable_sort compare_event a;
  a

let filter f s =
  Array.to_list s |> List.filter (fun (sp, x) -> f sp x) |> Array.of_list

let fold f s acc = Array.fold_left (fun acc (sp, x) -> f sp x acc) acc s
let iter f s = Array.iter (fun (sp, x) -> f sp x) s

let merge a b =
  let out = Array.append a b in
  Array.stable_sort compare_event out;
  out

let clip window s =
  Array.to_list s
  |> List.filter_map (fun (sp, x) ->
         match Span.inter window sp with
         | Some sp' -> Some (sp', x)
         | None -> None)
  |> Array.of_list

let durations s = List.map (fun (sp, _) -> Span.length sp) (to_list s)

let events_in window s =
  List.filter (fun (sp, _) -> Span.overlaps window sp) (to_list s)

type 'a builder = (Span.t * 'a) list ref

let builder () = ref []
let add b sp x = b := (sp, x) :: !b
let build b = of_list !b

let pp pp_data ppf s =
  let pp_event ppf (sp, x) =
    Format.fprintf ppf "%a:%a" Span.pp sp pp_data x
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_event)
    (to_list s)
