(* Canonical form: an array of disjoint, non-adjacent spans in increasing
   order.  The array representation makes point queries O(log n) and the
   linear merges below cache-friendly, which matters when a trace yields
   hundreds of thousands of events. *)

type t = Span.t array

let empty = [||]
let is_empty s = Array.length s = 0

let coalesce_sorted spans =
  (* [spans]: sorted by start.  Merge overlapping or adjacent spans. *)
  match spans with
  | [] -> [||]
  | first :: rest ->
      let acc = ref [] in
      let cur = ref first in
      let flush () = acc := !cur :: !acc in
      let absorb s =
        if Span.touches !cur s then cur := Span.hull !cur s
        else begin
          flush ();
          cur := s
        end
      in
      List.iter absorb rest;
      flush ();
      Array.of_list (List.rev !acc)

let of_spans spans = coalesce_sorted (List.sort Span.compare spans)
let of_span s = [| s |]
let to_list s = Array.to_list s
let cardinal = Array.length
let size s = Array.fold_left (fun acc sp -> acc + Span.length sp) 0 s

let find_covering t s =
  (* Index of the span containing instant [t], or -1. *)
  let lo = ref 0 and hi = ref (Array.length s - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let sp = s.(mid) in
    if t < Span.start sp then hi := mid - 1
    else if t >= Span.stop sp then lo := mid + 1
    else begin
      found := mid;
      lo := !hi + 1
    end
  done;
  !found

let mem t s = find_covering t s >= 0

let span_at t s =
  let i = find_covering t s in
  if i >= 0 then Some s.(i) else None

let add sp s = of_spans (sp :: to_list s)

(* Two-pointer union over the already-sorted inputs. *)
let union a b =
  if is_empty a then b
  else if is_empty b then a
  else begin
    let n = Array.length a and m = Array.length b in
    let merged = ref [] in
    let i = ref 0 and j = ref 0 in
    while !i < n || !j < m do
      let take_a =
        !j >= m || (!i < n && Span.compare a.(!i) b.(!j) <= 0)
      in
      if take_a then begin
        merged := a.(!i) :: !merged;
        incr i
      end
      else begin
        merged := b.(!j) :: !merged;
        incr j
      end
    done;
    coalesce_sorted (List.rev !merged)
  end

let inter a b =
  let n = Array.length a and m = Array.length b in
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < n && !j < m do
    (match Span.inter a.(!i) b.(!j) with
    | Some s -> out := s :: !out
    | None -> ());
    if Span.stop a.(!i) <= Span.stop b.(!j) then incr i else incr j
  done;
  Array.of_list (List.rev !out)

let complement ~within s =
  let clipped =
    Array.to_list s |> List.filter_map (fun sp -> Span.inter within sp)
  in
  let out = ref [] in
  let cursor = ref (Span.start within) in
  let visit sp =
    if Span.start sp > !cursor then
      out := Span.v !cursor (Span.start sp) :: !out;
    cursor := max !cursor (Span.stop sp)
  in
  List.iter visit clipped;
  if !cursor < Span.stop within then out := Span.v !cursor (Span.stop within) :: !out;
  Array.of_list (List.rev !out)

let diff a b =
  match a with
  | [||] -> empty
  | _ ->
      let whole = Span.hull a.(0) a.(Array.length a - 1) in
      inter a (complement ~within:whole b)

let clip window s =
  Array.to_list s
  |> List.filter_map (fun sp -> Span.inter window sp)
  |> Array.of_list

let hull s =
  if is_empty s then None else Some (Span.hull s.(0) s.(Array.length s - 1))

let filter f s = Array.of_list (List.filter f (Array.to_list s))
let longer_than d s = filter (fun sp -> Span.length sp > d) s
let fold f s acc = Array.fold_left (fun acc sp -> f sp acc) acc s
let iter f s = Array.iter f s

let equal a b =
  Array.length a = Array.length b && Array.for_all2 Span.equal a b

let pp ppf s =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Span.pp)
    (to_list s)
