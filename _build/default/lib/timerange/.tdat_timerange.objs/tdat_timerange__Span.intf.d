lib/timerange/span.mli: Format Time_us
