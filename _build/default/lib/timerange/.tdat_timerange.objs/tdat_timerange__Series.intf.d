lib/timerange/series.mli: Format Span Span_set Time_us
