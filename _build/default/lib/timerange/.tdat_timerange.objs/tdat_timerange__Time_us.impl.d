lib/timerange/time_us.ml: Float Format Stdlib
