lib/timerange/series.ml: Array Format List Span Span_set
