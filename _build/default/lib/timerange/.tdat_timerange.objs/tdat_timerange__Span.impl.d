lib/timerange/span.ml: Format Int Printf Time_us
