lib/timerange/span_set.ml: Array Format List Span
