lib/timerange/span_set.mli: Format Span Time_us
