lib/timerange/time_us.mli: Format
