type t = { start : Time_us.t; stop : Time_us.t }

let v start stop =
  if stop <= start then
    invalid_arg
      (Printf.sprintf "Span.v: stop (%d) must be greater than start (%d)" stop
         start);
  { start; stop }

let point t = { start = t; stop = t + 1 }

let of_duration start len =
  if len <= 0 then invalid_arg "Span.of_duration: non-positive length";
  { start; stop = start + len }

let start s = s.start
let stop s = s.stop
let length s = s.stop - s.start
let shift d s = { start = s.start + d; stop = s.stop + d }
let contains s t = s.start <= t && t < s.stop
let overlaps a b = a.start < b.stop && b.start < a.stop
let touches a b = a.start <= b.stop && b.start <= a.stop

let inter a b =
  let start = max a.start b.start and stop = min a.stop b.stop in
  if start < stop then Some { start; stop } else None

let hull a b = { start = min a.start b.start; stop = max a.stop b.stop }

let compare a b =
  match Int.compare a.start b.start with
  | 0 -> Int.compare a.stop b.stop
  | c -> c

let equal a b = compare a b = 0

let pp ppf s =
  Format.fprintf ppf "[%a, %a)" Time_us.pp s.start Time_us.pp s.stop
