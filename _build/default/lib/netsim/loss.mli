(** Packet-loss models for links.

    A model is queried once per packet, in arrival order, and answers
    whether that packet is dropped.  Models are stateful (bursty loss
    needs memory) and deterministic given their RNG. *)

type t

val drop : t -> Tdat_timerange.Time_us.t -> bool
(** [drop m now]: decide the fate of a packet entering at [now]. *)

val none : t

val bernoulli : Tdat_rng.Rng.t -> float -> t
(** Independent loss with probability [p]. *)

val gilbert :
  Tdat_rng.Rng.t -> p_enter:float -> p_exit:float -> p_loss_bad:float -> t
(** Two-state Gilbert–Elliott model: lossless "good" state; "bad" bursts
    entered with [p_enter] per packet, left with [p_exit], dropping with
    [p_loss_bad] while inside.  Produces the consecutive-loss episodes of
    Section II-B2. *)

val during : Tdat_timerange.Span_set.t -> t
(** Deterministic loss inside the given time windows — for crafting
    exact episodes (e.g., Figs. 7/8). *)

val bernoulli_during :
  Tdat_rng.Rng.t -> Tdat_timerange.Span_set.t -> float -> t
(** Random loss with probability [p], but only inside the given windows:
    a controlled congestion episode whose survivors still reach the
    sniffer (visible consecutive losses). *)

val combine : t -> t -> t
(** Drops when either model drops. *)
