type t = Tdat_timerange.Time_us.t -> bool

let drop m now = m now
let none _ = false

let bernoulli rng p _ = Tdat_rng.Rng.bernoulli rng p

let gilbert rng ~p_enter ~p_exit ~p_loss_bad =
  let bad = ref false in
  fun _ ->
    let module R = Tdat_rng.Rng in
    if !bad then begin
      if R.bernoulli rng p_exit then bad := false
    end
    else if R.bernoulli rng p_enter then bad := true;
    !bad && R.bernoulli rng p_loss_bad

let during spans now = Tdat_timerange.Span_set.mem now spans

let bernoulli_during rng spans p now =
  Tdat_timerange.Span_set.mem now spans && Tdat_rng.Rng.bernoulli rng p

let combine a b now = a now || b now
