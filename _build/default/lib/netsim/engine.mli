(** Discrete-event simulation engine.

    Single-threaded, deterministic: events at equal times fire in the
    order they were scheduled.  Time is {!Tdat_timerange.Time_us.t}. *)

type t

type timer
(** A handle to a scheduled event, cancellable (needed by TCP
    retransmission timers). *)

val create : unit -> t

val now : t -> Tdat_timerange.Time_us.t

val schedule_at : t -> Tdat_timerange.Time_us.t -> (unit -> unit) -> timer
(** @raise Invalid_argument when scheduling in the past. *)

val schedule_after : t -> Tdat_timerange.Time_us.t -> (unit -> unit) -> timer
(** [schedule_after t d f]: [f] runs at [now t + d]; [d >= 0]. *)

val cancel : timer -> unit
(** Idempotent; cancelling a fired timer is a no-op. *)

val is_pending : timer -> bool

val run : ?until:Tdat_timerange.Time_us.t -> t -> unit
(** Processes events until the queue is empty or simulated time would
    exceed [until]. *)

val pending_events : t -> int
