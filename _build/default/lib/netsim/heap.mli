(** A mutable binary min-heap keyed by integer priority, with insertion
    order as the tie-break so simultaneous simulator events run in
    schedule order (determinism). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> int -> 'a -> unit
(** [push h key v] inserts [v] with priority [key]. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the minimum, FIFO among equal keys. *)

val peek_key : 'a t -> int option
