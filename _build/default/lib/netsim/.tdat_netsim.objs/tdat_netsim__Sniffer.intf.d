lib/netsim/sniffer.mli: Engine Tdat_pkt Tdat_timerange
