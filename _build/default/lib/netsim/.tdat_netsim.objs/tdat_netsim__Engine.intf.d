lib/netsim/engine.mli: Tdat_timerange
