lib/netsim/link.ml: Engine Loss Tdat_pkt Tdat_rng Tdat_timerange
