lib/netsim/engine.ml: Heap Printf Tdat_timerange
