lib/netsim/link.mli: Engine Loss Tdat_pkt Tdat_rng Tdat_timerange
