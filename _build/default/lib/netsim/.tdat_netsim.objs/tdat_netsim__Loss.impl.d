lib/netsim/loss.ml: Tdat_rng Tdat_timerange
