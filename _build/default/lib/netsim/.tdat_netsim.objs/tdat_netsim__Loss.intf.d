lib/netsim/loss.mli: Tdat_rng Tdat_timerange
