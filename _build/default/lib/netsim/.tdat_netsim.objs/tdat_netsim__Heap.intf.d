lib/netsim/heap.mli:
