lib/netsim/heap.ml: Array Option
