lib/netsim/sniffer.ml: Engine List Tdat_pkt Tdat_timerange
