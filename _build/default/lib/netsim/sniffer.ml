type t = {
  engine : Engine.t;
  mutable segments : Tdat_pkt.Tcp_segment.t list; (* reverse order *)
  mutable count : int;
  mutable voids : Tdat_timerange.Span_set.t;
}

let create ~engine () =
  { engine; segments = []; count = 0; voids = Tdat_timerange.Span_set.empty }

let record t seg =
  let stamped = { seg with Tdat_pkt.Tcp_segment.ts = Engine.now t.engine } in
  t.segments <- stamped :: t.segments;
  t.count <- t.count + 1

let tap t ~then_ seg =
  record t seg;
  then_ seg

let add_void t span =
  t.voids <- Tdat_timerange.Span_set.add span t.voids

let trace t =
  Tdat_pkt.Trace.of_segments ~voids:t.voids (List.rev t.segments)

let count t = t.count
