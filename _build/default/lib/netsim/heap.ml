type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable items : 'a entry array option;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { items = None; size = 0; next_seq = 0 }
let is_empty h = h.size = 0
let size h = h.size

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h entry =
  match h.items with
  | None -> h.items <- Some (Array.make 16 entry)
  | Some a when h.size = Array.length a ->
      let bigger = Array.make (2 * Array.length a) entry in
      Array.blit a 0 bigger 0 h.size;
      h.items <- Some bigger
  | Some _ -> ()

let push h key value =
  let entry = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  grow h entry;
  let a = Option.get h.items in
  a.(h.size) <- entry;
  h.size <- h.size + 1;
  (* Sift up. *)
  let i = ref (h.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less a.(!i) a.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = a.(!i) in
    a.(!i) <- a.(parent);
    a.(parent) <- tmp;
    i := parent
  done

let pop h =
  if h.size = 0 then None
  else begin
    let a = Option.get h.items in
    let top = a.(0) in
    h.size <- h.size - 1;
    a.(0) <- a.(h.size);
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && less a.(l) a.(!smallest) then smallest := l;
      if r < h.size && less a.(r) a.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = a.(!i) in
        a.(!i) <- a.(!smallest);
        a.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    Some (top.key, top.value)
  end

let peek_key h =
  if h.size = 0 then None else Some (Option.get h.items).(0).key
