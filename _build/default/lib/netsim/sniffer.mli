(** Passive packet capture at a fixed point in the topology (the
    "Sniffer" of Fig. 2).  Interpose it on a path by calling {!tap} as a
    link's deliver continuation. *)

type t

val create : engine:Engine.t -> unit -> t

val tap : t -> then_:(Tdat_pkt.Tcp_segment.t -> unit) -> Tdat_pkt.Tcp_segment.t -> unit
(** Records the segment at the current simulated time, then passes it on. *)

val record : t -> Tdat_pkt.Tcp_segment.t -> unit
(** Record without forwarding. *)

val add_void : t -> Tdat_timerange.Span.t -> unit
(** Declare a period during which the sniffer dropped packets (tcpdump
    void periods, Section II-A). *)

val trace : t -> Tdat_pkt.Trace.t
(** Everything captured so far, as a time-sorted trace with voids. *)

val count : t -> int
