type stats = {
  delivered : int;
  dropped_loss : int;
  dropped_overflow : int;
}

type t = {
  engine : Engine.t;
  name : string;
  delay : Tdat_timerange.Time_us.t;
  jitter : Tdat_timerange.Time_us.t;
  jitter_rng : Tdat_rng.Rng.t option;
  bandwidth_bps : int;
  buffer_pkts : int;
  loss : Loss.t;
  on_drop : Tdat_pkt.Tcp_segment.t -> unit;
  deliver : Tdat_pkt.Tcp_segment.t -> unit;
  mutable busy_until : Tdat_timerange.Time_us.t;
  mutable queued : int;
  mutable delivered : int;
  mutable dropped_loss : int;
  mutable dropped_overflow : int;
}

(* Per-packet wire overhead: Ethernet + IP + TCP headers. *)
let header_overhead = 54

let create ~engine ?(name = "link") ~delay ?(jitter = 0) ?jitter_rng
    ~bandwidth_bps ?(buffer_pkts = 128) ?(loss = Loss.none)
    ?(on_drop = fun _ -> ()) ~deliver () =
  if bandwidth_bps <= 0 then invalid_arg "Link.create: bandwidth";
  if buffer_pkts < 1 then invalid_arg "Link.create: buffer_pkts";
  {
    engine;
    name;
    delay;
    jitter;
    jitter_rng;
    bandwidth_bps;
    buffer_pkts;
    loss;
    on_drop;
    deliver;
    busy_until = 0;
    queued = 0;
    delivered = 0;
    dropped_loss = 0;
    dropped_overflow = 0;
  }

let tx_time t bytes =
  (* Microseconds to serialize [bytes] at the link rate, at least 1. *)
  max 1 (bytes * 8 * 1_000_000 / t.bandwidth_bps)

let propagation t =
  match (t.jitter, t.jitter_rng) with
  | 0, _ | _, None -> t.delay
  | j, Some rng -> t.delay + Tdat_rng.Rng.int rng (j + 1)

let send t (seg : Tdat_pkt.Tcp_segment.t) =
  let now = Engine.now t.engine in
  if Loss.drop t.loss now then begin
    t.dropped_loss <- t.dropped_loss + 1;
    t.on_drop seg
  end
  else if t.queued >= t.buffer_pkts then begin
    t.dropped_overflow <- t.dropped_overflow + 1;
    t.on_drop seg
  end
  else begin
    t.queued <- t.queued + 1;
    let start = max now t.busy_until in
    let finish = start + tx_time t (seg.len + header_overhead) in
    t.busy_until <- finish;
    let arrival = finish + propagation t in
    ignore
      (Engine.schedule_at t.engine finish (fun () ->
           t.queued <- t.queued - 1));
    ignore
      (Engine.schedule_at t.engine arrival (fun () ->
           t.delivered <- t.delivered + 1;
           t.deliver { seg with ts = arrival }))
  end

let stats t =
  {
    delivered = t.delivered;
    dropped_loss = t.dropped_loss;
    dropped_overflow = t.dropped_overflow;
  }

let name t = t.name
