(** A unidirectional link: finite drop-tail buffer, serialization at a
    configured bandwidth, propagation delay (with optional jitter), and a
    pluggable loss model.

    Drop-tail overflow under synchronized senders is the mechanism behind
    the receiver-local losses of Section II-B2 ("sustaining packet drops
    on router interfaces"). *)

type t

type stats = {
  delivered : int;
  dropped_loss : int;     (** Dropped by the loss model. *)
  dropped_overflow : int; (** Dropped by buffer overflow. *)
}

val create :
  engine:Engine.t ->
  ?name:string ->
  delay:Tdat_timerange.Time_us.t ->
  ?jitter:Tdat_timerange.Time_us.t ->
  ?jitter_rng:Tdat_rng.Rng.t ->
  bandwidth_bps:int ->
  ?buffer_pkts:int ->
  ?loss:Loss.t ->
  ?on_drop:(Tdat_pkt.Tcp_segment.t -> unit) ->
  deliver:(Tdat_pkt.Tcp_segment.t -> unit) ->
  unit ->
  t
(** [deliver] is invoked at arrival time with the segment restamped to
    that time.  [buffer_pkts] defaults to 128; [jitter] to 0 (jitter can
    reorder packets, which is deliberate when modelling in-network
    reordering). *)

val send : t -> Tdat_pkt.Tcp_segment.t -> unit
(** Enqueue at the current simulated time. *)

val stats : t -> stats
val name : t -> string
