lib/rng/rng.mli:
