(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic choice in the simulator draws from an explicit [t]
    seeded by the scenario, so whole-dataset syntheses are reproducible
    bit-for-bit across runs and machines. *)

type t

val create : int -> t
(** [create seed]. Equal seeds yield equal streams. *)

val split : t -> t
(** A statistically independent child stream; the parent advances. *)

val bits64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** Uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed, given mean. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto distributed: heavy-tailed delays and burst sizes. *)

val choose : t -> 'a array -> 'a
(** Uniform pick. @raise Invalid_argument on empty array. *)

val weighted : t -> (float * 'a) list -> 'a
(** Pick by relative weight. @raise Invalid_argument on empty list or
    non-positive total weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
