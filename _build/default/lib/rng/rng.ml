type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. v /. 9007199254740992. (* 2^53 *)

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let pareto t ~shape ~scale =
  let u = 1.0 -. float t 1.0 in
  scale /. (u ** (1.0 /. shape))

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let weighted t items =
  if items = [] then invalid_arg "Rng.weighted: empty list";
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. items in
  if total <= 0. then invalid_arg "Rng.weighted: non-positive total weight";
  let target = float t total in
  let rec pick acc = function
    | [] -> snd (List.nth items (List.length items - 1))
    | (w, x) :: rest -> if acc +. w > target then x else pick (acc +. w) rest
  in
  pick 0. items

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
