(** A transport endpoint: IPv4 address and TCP port. *)

type t = { ip : int32; port : int }

val v : int32 -> int -> t

val of_quad : int -> int -> int -> int -> int -> t
(** [of_quad a b c d port] builds [a.b.c.d:port].
    @raise Invalid_argument if any octet or the port is out of range. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
