type t = { ip : int32; port : int }

let v ip port = { ip; port }

let of_quad a b c d port =
  let octet name x =
    if x < 0 || x > 255 then
      invalid_arg (Printf.sprintf "Endpoint.of_quad: %s octet %d" name x)
  in
  octet "a" a;
  octet "b" b;
  octet "c" c;
  octet "d" d;
  if port < 0 || port > 65535 then
    invalid_arg (Printf.sprintf "Endpoint.of_quad: port %d" port);
  let ip =
    Int32.logor
      (Int32.shift_left (Int32.of_int a) 24)
      (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d))
  in
  { ip; port }

let compare a b =
  match Int32.unsigned_compare a.ip b.ip with
  | 0 -> Int.compare a.port b.port
  | c -> c

let equal a b = compare a b = 0

let pp ppf { ip; port } =
  let u = Int32.to_int (Int32.shift_right_logical ip 0) land 0xFFFFFFFF in
  (* [Int32.to_int] sign-extends; mask restores the unsigned value on
     64-bit platforms. *)
  Format.fprintf ppf "%d.%d.%d.%d:%d"
    ((u lsr 24) land 0xFF)
    ((u lsr 16) land 0xFF)
    ((u lsr 8) land 0xFF)
    (u land 0xFF) port

let to_string t = Format.asprintf "%a" pp t
