open Tdat_timerange

type t = { segments : Tcp_segment.t array; voids : Span_set.t }

let of_segments ?(voids = Span_set.empty) segs =
  let a = Array.of_list segs in
  Array.stable_sort Tcp_segment.compare_ts a;
  { segments = a; voids }

let segments t = Array.to_list t.segments
let voids t = t.voids
let length t = Array.length t.segments

let total_bytes t =
  Array.fold_left (fun acc (s : Tcp_segment.t) -> acc + s.len) 0 t.segments

let window t =
  let n = Array.length t.segments in
  if n = 0 then None
  else begin
    let first = t.segments.(0).Tcp_segment.ts in
    let last = t.segments.(n - 1).Tcp_segment.ts in
    Some (Span.v first (last + 1))
  end

let conn_key (s : Tcp_segment.t) =
  if Endpoint.compare s.src s.dst <= 0 then (s.src, s.dst) else (s.dst, s.src)

let connections t =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let visit s =
    let k = conn_key s in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      order := k :: !order
    end
  in
  Array.iter visit t.segments;
  List.rev !order

let split_connection t ~sender ~receiver =
  let flow = Flow.v ~sender ~receiver in
  let segs =
    Array.to_list t.segments |> List.filter (Flow.matches flow)
  in
  { segments = Array.of_list segs; voids = t.voids }

let filter f t =
  { t with segments = Array.of_list (List.filter f (segments t)) }

let merge a b =
  of_segments ~voids:(Span_set.union a.voids b.voids)
    (segments a @ segments b)

let append t segs = of_segments ~voids:t.voids (segments t @ segs)

let infer_sender t (a, b) =
  let bytes_from e =
    Array.fold_left
      (fun acc (s : Tcp_segment.t) ->
        if Endpoint.equal s.src e then acc + s.len else acc)
      0 t.segments
  in
  if bytes_from a >= bytes_from b then Flow.v ~sender:a ~receiver:b
  else Flow.v ~sender:b ~receiver:a
