lib/pkt/tcp_segment.mli: Endpoint Format Tdat_timerange
