lib/pkt/tcp_segment.ml: Endpoint Format Int String Tdat_timerange
