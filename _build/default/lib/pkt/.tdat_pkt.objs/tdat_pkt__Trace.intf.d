lib/pkt/trace.mli: Endpoint Flow Tcp_segment Tdat_timerange
