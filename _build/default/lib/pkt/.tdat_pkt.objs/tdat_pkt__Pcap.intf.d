lib/pkt/pcap.mli: Trace
