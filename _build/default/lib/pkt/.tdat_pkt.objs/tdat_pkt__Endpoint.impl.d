lib/pkt/endpoint.ml: Format Int Int32 Printf
