lib/pkt/flow.mli: Endpoint Format Tcp_segment
