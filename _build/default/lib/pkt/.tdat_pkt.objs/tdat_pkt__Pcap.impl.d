lib/pkt/pcap.ml: Buffer Bytes Char Endpoint Fun Int32 List String Tcp_segment Trace
