lib/pkt/trace.ml: Array Endpoint Flow Hashtbl List Span Span_set Tcp_segment Tdat_timerange
