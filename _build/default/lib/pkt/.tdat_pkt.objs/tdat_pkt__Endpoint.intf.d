lib/pkt/endpoint.mli: Format
