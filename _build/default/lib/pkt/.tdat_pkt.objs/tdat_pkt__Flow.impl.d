lib/pkt/flow.ml: Endpoint Format Tcp_segment
