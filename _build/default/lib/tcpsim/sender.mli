(** The sending TCP endpoint: window-based congestion control
    (Tahoe / Reno / NewReno), retransmission timeout with backoff, fast
    retransmit/recovery, zero-window persist probing (with the optional
    window-update-discard bug of Section IV-B).

    The application ({!Tdat_bgpsim.Speaker} in this repository) feeds the
    stream with {!write}; when it writes slowly the connection is
    "send-application limited" — the dominant delay factor of Table IV. *)

type t

type counters = {
  segments_sent : int;
  bytes_sent : int;
  retransmissions : int;
  timeouts : int;
  fast_retransmits : int;
  probes : int;
}

val create :
  engine:Tdat_netsim.Engine.t ->
  config:Tcp_types.config ->
  local:Tdat_pkt.Endpoint.t ->
  remote:Tdat_pkt.Endpoint.t ->
  send:(Tdat_pkt.Tcp_segment.t -> unit) ->
  ?rng:Tdat_rng.Rng.t ->
  unit ->
  t
(** [rng] is required when [config.window_update_loss_prob > 0]. *)

val start : t -> unit
(** Send the SYN (active open). *)

val established : t -> bool

val write : t -> string -> unit
(** Append application bytes to the stream and transmit as windows
    allow. *)

val written : t -> int
(** Total bytes the application has written. *)

val acked : t -> int
(** snd_una: bytes cumulatively acknowledged. *)

val in_flight : t -> int
val all_acked : t -> bool
(** Every written byte acknowledged. *)

val cwnd : t -> int
val rwnd : t -> int
(** Sender's (possibly bug-stale) view of the peer window. *)

val on_segment : t -> Tdat_pkt.Tcp_segment.t -> unit
(** Deliver an ACK (or SYN+ACK) from the network. *)

val set_on_all_acked : t -> (unit -> unit) -> unit
(** Fires every time the stream drains to fully-acknowledged. *)

val set_on_established : t -> (unit -> unit) -> unit
val counters : t -> counters
val stop : t -> unit
(** Cancel pending timers (session torn down). *)
