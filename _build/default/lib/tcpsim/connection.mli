(** Wiring a sender and a receiver through the monitored topology of
    Fig. 2:

    {v Sender --(upstream path)--> Sniffer --(local path)--> Receiver v}

    The sniffer taps both directions.  A {!Site.t} models the collector
    side — the sniffer plus the local links into the collector box —
    and is shared by every connection terminating at that collector, so
    concurrent table transfers contend for the same local buffer
    (receiver-local drop-tail losses, Section II-B2 and Fig. 15). *)

type path = {
  delay : Tdat_timerange.Time_us.t;  (** One-way propagation. *)
  jitter : Tdat_timerange.Time_us.t;
  bandwidth_bps : int;
  buffer_pkts : int;
  data_loss : Tdat_netsim.Loss.t;  (** Applied to sender→receiver packets. *)
  ack_loss : Tdat_netsim.Loss.t;   (** Applied to receiver→sender packets. *)
}

val path :
  ?delay:Tdat_timerange.Time_us.t ->
  ?jitter:Tdat_timerange.Time_us.t ->
  ?bandwidth_bps:int ->
  ?buffer_pkts:int ->
  ?data_loss:Tdat_netsim.Loss.t ->
  ?ack_loss:Tdat_netsim.Loss.t ->
  unit ->
  path
(** Defaults: 1 ms delay, no jitter, 1 Gb/s, 128-packet buffer, no loss. *)

module Site : sig
  type t

  val create :
    engine:Tdat_netsim.Engine.t ->
    ?rng:Tdat_rng.Rng.t ->
    local:path ->
    unit ->
    t

  val sniffer : t -> Tdat_netsim.Sniffer.t
  val trace : t -> Tdat_pkt.Trace.t

  val local_drops : t -> int
  (** Packets dropped on the sniffer→receiver local link (the
      receiver-local losses). *)
end

type t

val create :
  engine:Tdat_netsim.Engine.t ->
  ?sender_cfg:Tcp_types.config ->
  ?receiver_cfg:Tcp_types.config ->
  sender_ep:Tdat_pkt.Endpoint.t ->
  receiver_ep:Tdat_pkt.Endpoint.t ->
  upstream:path ->
  site:Site.t ->
  ?rng:Tdat_rng.Rng.t ->
  unit ->
  t
(** Registers the connection at the site and builds its private upstream
    links.  [receiver_cfg] controls the collector's advertised window. *)

val sender : t -> Sender.t
val receiver : t -> Receiver.t
val start : t -> unit
(** Begin the TCP handshake. *)

val upstream_drops : t -> int
(** Data packets lost before the sniffer (upstream losses). *)

val flow : t -> Tdat_pkt.Flow.t
