type flavor = Tahoe | Reno | New_reno

type config = {
  mss : int;
  max_adv_window : int;
  flavor : flavor;
  init_cwnd_segments : int;
  min_rto : Tdat_timerange.Time_us.t;
  max_rto : Tdat_timerange.Time_us.t;
  rto_backoff : float;
  delack_time : Tdat_timerange.Time_us.t;
  delack_segments : int;
  persist_interval : Tdat_timerange.Time_us.t;
  window_update_loss_prob : float;
}

let default =
  {
    mss = 1400;
    max_adv_window = 65535;
    flavor = New_reno;
    init_cwnd_segments = 2;
    min_rto = 200_000;
    max_rto = 60_000_000;
    rto_backoff = 2.0;
    delack_time = 100_000;
    delack_segments = 2;
    persist_interval = 500_000;
    window_update_loss_prob = 0.;
  }
