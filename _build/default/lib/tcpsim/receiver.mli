(** The receiving TCP endpoint: reassembly, cumulative and delayed ACKs,
    and flow control by advertised window.

    The receiving application (the collector's BGP process) drains the
    receive buffer explicitly via {!consume}; a slow application closes
    the advertised window — the paper's "BGP receiver app" delay factor
    works through exactly this coupling. *)

type t

val create :
  engine:Tdat_netsim.Engine.t ->
  config:Tcp_types.config ->
  local:Tdat_pkt.Endpoint.t ->
  remote:Tdat_pkt.Endpoint.t ->
  send:(Tdat_pkt.Tcp_segment.t -> unit) ->
  unit ->
  t
(** [send] transmits ACKs toward the sender (normally a {!Tdat_netsim.Link}). *)

val on_segment : t -> Tdat_pkt.Tcp_segment.t -> unit
(** Deliver a segment from the network (data or SYN). *)

val available : t -> int
(** Contiguous received bytes not yet consumed by the application. *)

val peek : t -> string
(** The available bytes, without consuming. *)

val consume : t -> int -> unit
(** Application reads (and frees) [n] bytes of buffer; sends a window
    update if the window was effectively closed.
    @raise Invalid_argument if [n > available t]. *)

val set_on_data : t -> (unit -> unit) -> unit
(** Callback fired whenever new contiguous bytes become available. *)

val rcv_nxt : t -> int
val advertised_window : t -> int

val kill : t -> unit
(** Stop responding entirely (collector failure, Fig. 9). *)

val is_killed : t -> bool
