module Seg = Tdat_pkt.Tcp_segment
module Engine = Tdat_netsim.Engine

type counters = {
  segments_sent : int;
  bytes_sent : int;
  retransmissions : int;
  timeouts : int;
  fast_retransmits : int;
  probes : int;
}

type t = {
  engine : Engine.t;
  config : Tcp_types.config;
  local : Tdat_pkt.Endpoint.t;
  remote : Tdat_pkt.Endpoint.t;
  send : Seg.t -> unit;
  rng : Tdat_rng.Rng.t option;
  buf : Buffer.t; (* the whole application stream *)
  mutable established : bool;
  mutable syn_time : Tdat_timerange.Time_us.t;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable rwnd : int;
  mutable last_peer_window : int;
  mutable dup_acks : int;
  mutable in_recovery : bool;
  mutable recover : int;
  rto : Rto.t;
  mutable rtx_timer : Engine.timer option;
  mutable syn_timer : Engine.timer option;
  (* One RTT sample in flight: (covering stream offset, send time). *)
  mutable rtt_sample : (int * Tdat_timerange.Time_us.t) option;
  mutable persist_timer : Engine.timer option;
  mutable persist_interval : Tdat_timerange.Time_us.t;
  mutable probing : bool;
  mutable on_all_acked : unit -> unit;
  mutable on_established : unit -> unit;
  mutable stopped : bool;
  (* counters *)
  mutable segments_sent : int;
  mutable bytes_sent : int;
  mutable retransmissions : int;
  mutable timeouts : int;
  mutable fast_retransmits : int;
  mutable probes_sent : int;
}

let create ~engine ~config ~local ~remote ~send ?rng () =
  if config.Tcp_types.window_update_loss_prob > 0. && rng = None then
    invalid_arg "Sender.create: window_update_loss_prob needs an rng";
  {
    engine;
    config;
    local;
    remote;
    send;
    rng;
    buf = Buffer.create 4096;
    established = false;
    syn_time = 0;
    snd_una = 0;
    snd_nxt = 0;
    cwnd = config.Tcp_types.mss * config.Tcp_types.init_cwnd_segments;
    ssthresh = max_int / 2;
    rwnd = config.Tcp_types.max_adv_window;
    last_peer_window = config.Tcp_types.max_adv_window;
    dup_acks = 0;
    in_recovery = false;
    recover = 0;
    rto =
      Rto.create ~min_rto:config.Tcp_types.min_rto
        ~max_rto:config.Tcp_types.max_rto
        ~backoff_factor:config.Tcp_types.rto_backoff;
    rtx_timer = None;
    syn_timer = None;
    rtt_sample = None;
    persist_timer = None;
    persist_interval = config.Tcp_types.persist_interval;
    probing = false;
    on_all_acked = (fun () -> ());
    on_established = (fun () -> ());
    stopped = false;
    segments_sent = 0;
    bytes_sent = 0;
    retransmissions = 0;
    timeouts = 0;
    fast_retransmits = 0;
    probes_sent = 0;
  }

let established t = t.established
let written t = Buffer.length t.buf
let acked t = t.snd_una
let in_flight t = t.snd_nxt - t.snd_una
let all_acked t = t.snd_una >= written t
let cwnd t = t.cwnd
let rwnd t = t.rwnd
let set_on_all_acked t f = t.on_all_acked <- f
let set_on_established t f = t.on_established <- f

let counters t =
  {
    segments_sent = t.segments_sent;
    bytes_sent = t.bytes_sent;
    retransmissions = t.retransmissions;
    timeouts = t.timeouts;
    fast_retransmits = t.fast_retransmits;
    probes = t.probes_sent;
  }

let cancel_timer = function Some timer -> Engine.cancel timer | None -> ()

let stop t =
  t.stopped <- true;
  cancel_timer t.rtx_timer;
  cancel_timer t.syn_timer;
  cancel_timer t.persist_timer;
  t.rtx_timer <- None;
  t.syn_timer <- None;
  t.persist_timer <- None

let emit_segment t ~seq ~len ~retransmission =
  let payload = Buffer.sub t.buf seq len in
  let seg =
    Seg.v ~ts:(Engine.now t.engine) ~src:t.local ~dst:t.remote ~seq
      ~ack:0 ~window:t.config.Tcp_types.max_adv_window
      ~flags:Seg.data_flags ~payload ()
  in
  t.segments_sent <- t.segments_sent + 1;
  t.bytes_sent <- t.bytes_sent + len;
  if retransmission then begin
    t.retransmissions <- t.retransmissions + 1;
    (* Karn's rule: outstanding RTT samples are invalid once anything is
       retransmitted. *)
    t.rtt_sample <- None
  end
  else if t.rtt_sample = None then
    t.rtt_sample <- Some (seq + len, Engine.now t.engine);
  t.send seg

let rec arm_rtx t =
  cancel_timer t.rtx_timer;
  t.rtx_timer <-
    Some (Engine.schedule_after t.engine (Rto.current t.rto) (fun () -> on_rto t))

and on_rto t =
  t.rtx_timer <- None;
  if (not t.stopped) && in_flight t > 0 then begin
    t.timeouts <- t.timeouts + 1;
    let flight = in_flight t in
    let mss = t.config.Tcp_types.mss in
    t.ssthresh <- max (flight / 2) (2 * mss);
    t.cwnd <- mss;
    t.dup_acks <- 0;
    t.in_recovery <- false;
    Rto.backoff t.rto;
    let len = min mss (t.snd_nxt - t.snd_una) in
    emit_segment t ~seq:t.snd_una ~len ~retransmission:true;
    arm_rtx t
  end

let arm_persist t =
  if t.persist_timer = None && not t.stopped then begin
    t.probing <- true;
    let rec fire () =
      t.persist_timer <- None;
      if (not t.stopped) && t.probing && t.rwnd = 0 then begin
        (* Zero-window probe: one byte of real data at snd_una if
           unsent data exists there, else at snd_nxt. *)
        if written t > t.snd_nxt || in_flight t > 0 then begin
          let seq = if in_flight t > 0 then t.snd_una else t.snd_nxt in
          let fresh = seq = t.snd_nxt in
          if fresh then t.snd_nxt <- t.snd_nxt + 1;
          t.probes_sent <- t.probes_sent + 1;
          emit_segment t ~seq ~len:1 ~retransmission:(not fresh);
          t.persist_interval <-
            min (2 * t.persist_interval) t.config.Tcp_types.max_rto;
          t.persist_timer <-
            Some (Engine.schedule_after t.engine t.persist_interval fire)
        end
      end
    in
    t.persist_timer <-
      Some (Engine.schedule_after t.engine t.persist_interval fire)
  end

let rec try_send t =
  if t.established && not t.stopped then begin
    let mss = t.config.Tcp_types.mss in
    let window = min t.cwnd t.rwnd in
    let progressed = ref true in
    while !progressed do
      progressed := false;
      let avail = written t - t.snd_nxt in
      let usable = t.snd_una + window - t.snd_nxt in
      if avail > 0 && usable > 0 then begin
        let len = min (min mss avail) usable in
        (* Silly-window avoidance: hold back a sub-MSS tail that does not
           fill the usable window. *)
        if len = mss || len = avail || len = usable then begin
          emit_segment t ~seq:t.snd_nxt ~len ~retransmission:false;
          t.snd_nxt <- t.snd_nxt + len;
          if t.rtx_timer = None then arm_rtx t;
          progressed := true
        end
      end
    done;
    if t.rwnd = 0 && in_flight t = 0 && written t > t.snd_nxt then
      arm_persist t
  end

and process_ack t (seg : Seg.t) =
  let mss = t.config.Tcp_types.mss in
  (* The zero-window probe-discard bug (Section IV-B): a window-update
     ACK races the pending probe; the probe is discarded although its
     sequence number was already consumed.  The byte is never
     transmitted until loss recovery fills the hole — at a receiver-side
     sniffer this reads as an upstream loss during a zero-window phase. *)
  (if
     t.probing && seg.window > 0
     && t.config.Tcp_types.window_update_loss_prob > 0.
     && written t > t.snd_nxt
     &&
     match t.rng with
     | Some rng ->
         Tdat_rng.Rng.bernoulli rng t.config.Tcp_types.window_update_loss_prob
     | None -> false
   then begin
     t.snd_nxt <- t.snd_nxt + 1;
     (* The phantom byte is "outstanding": the timeout path recovers it
        even if no further traffic produces duplicate ACKs. *)
     if t.rtx_timer = None then arm_rtx t
   end);
  let window_changed = seg.window <> t.last_peer_window in
  t.last_peer_window <- seg.window;
  t.rwnd <- seg.window;
  if t.rwnd > 0 && t.probing then begin
    t.probing <- false;
    cancel_timer t.persist_timer;
    t.persist_timer <- None;
    t.persist_interval <- t.config.Tcp_types.persist_interval
  end;
  let ack = seg.ack in
  if ack > t.snd_una then begin
    let newly = ack - t.snd_una in
    t.snd_una <- ack;
    t.dup_acks <- 0;
    (* RTT sampling (Karn-safe: sample cleared on any retransmit). *)
    (match t.rtt_sample with
    | Some (cover, sent_at) when ack >= cover ->
        Rto.sample t.rto (Engine.now t.engine - sent_at);
        t.rtt_sample <- None
    | _ -> ());
    Rto.reset_backoff t.rto;
    if t.in_recovery then begin
      if ack >= t.recover then begin
        (* Full ACK: leave fast recovery. *)
        t.in_recovery <- false;
        t.cwnd <- t.ssthresh
      end
      else begin
        match t.config.Tcp_types.flavor with
        | Tcp_types.New_reno ->
            (* Partial ACK: retransmit the next hole, deflate. *)
            let len = min mss (t.snd_nxt - t.snd_una) in
            if len > 0 then
              emit_segment t ~seq:t.snd_una ~len ~retransmission:true;
            t.cwnd <- max (t.cwnd - newly + mss) mss
        | Tcp_types.Reno | Tcp_types.Tahoe ->
            (* Reno treats any new ACK as recovery exit. *)
            t.in_recovery <- false;
            t.cwnd <- t.ssthresh
      end
    end
    else if t.cwnd < t.ssthresh then
      (* Slow start. *)
      t.cwnd <- t.cwnd + min newly mss
    else
      (* Congestion avoidance. *)
      t.cwnd <- t.cwnd + max 1 (mss * mss / t.cwnd);
    if in_flight t > 0 then arm_rtx t
    else begin
      cancel_timer t.rtx_timer;
      t.rtx_timer <- None
    end;
    try_send t;
    if all_acked t && written t > 0 then t.on_all_acked ()
  end
  else if
    ack = t.snd_una && in_flight t > 0 && seg.len = 0 && not window_changed
  then begin
    t.dup_acks <- t.dup_acks + 1;
    if t.dup_acks = 3 && not t.in_recovery then begin
      (* Fast retransmit. *)
      t.fast_retransmits <- t.fast_retransmits + 1;
      let flight = in_flight t in
      t.ssthresh <- max (flight / 2) (2 * mss);
      let len = min mss (t.snd_nxt - t.snd_una) in
      emit_segment t ~seq:t.snd_una ~len ~retransmission:true;
      (match t.config.Tcp_types.flavor with
      | Tcp_types.Tahoe ->
          t.cwnd <- mss;
          t.dup_acks <- 0
      | Tcp_types.Reno | Tcp_types.New_reno ->
          t.in_recovery <- true;
          t.recover <- t.snd_nxt;
          t.cwnd <- t.ssthresh + (3 * mss));
      arm_rtx t
    end
    else if t.in_recovery then begin
      (* Inflate during recovery; may release new segments. *)
      t.cwnd <- t.cwnd + mss;
      try_send t
    end
  end
  else if window_changed then try_send t

let on_segment t (seg : Seg.t) =
  if not t.stopped then begin
    if seg.flags.Seg.syn && seg.flags.Seg.ack && not t.established then begin
      t.established <- true;
      cancel_timer t.syn_timer;
      t.syn_timer <- None;
      Rto.sample t.rto (Engine.now t.engine - t.syn_time);
      t.rwnd <- seg.window;
      t.last_peer_window <- seg.window;
      (* Complete the three-way handshake with a pure ACK; passive
         analyzers use it to anchor the connection RTT. *)
      t.send
        (Seg.v ~ts:(Engine.now t.engine) ~src:t.local ~dst:t.remote ~seq:0
           ~ack:0 ~window:t.config.Tcp_types.max_adv_window
           ~flags:Seg.ack_flags ());
      t.on_established ();
      try_send t
    end
    else if seg.flags.Seg.ack then process_ack t seg
  end

let start t =
  t.syn_time <- Engine.now t.engine;
  let syn =
    Seg.v ~ts:(Engine.now t.engine) ~src:t.local ~dst:t.remote ~seq:0 ~ack:0
      ~window:t.config.Tcp_types.max_adv_window
      ~flags:(Seg.flags ~syn:true ())
      ~mss_opt:t.config.Tcp_types.mss ()
  in
  t.send syn;
  (* SYN retransmission with a conservative 3 s timer. *)
  let rec arm interval =
    t.syn_timer <-
      Some
        (Engine.schedule_after t.engine interval (fun () ->
             if not (t.established || t.stopped) then begin
               t.send { syn with Seg.ts = Engine.now t.engine };
               arm (2 * interval)
             end))
  in
  arm 3_000_000

let write t data =
  Buffer.add_string t.buf data;
  if t.established then try_send t
