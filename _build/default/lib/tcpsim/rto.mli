(** Retransmission-timeout estimation: Jacobson/Karels smoothed RTT with
    Karn's rule (callers must not feed samples from retransmitted
    segments), exponential backoff on successive timeouts. *)

type t

val create :
  min_rto:Tdat_timerange.Time_us.t ->
  max_rto:Tdat_timerange.Time_us.t ->
  backoff_factor:float ->
  t

val sample : t -> Tdat_timerange.Time_us.t -> unit
(** Feed one round-trip measurement; resets any backoff. *)

val current : t -> Tdat_timerange.Time_us.t
(** The RTO to arm now, clamped to [min_rto, max_rto], including any
    accumulated backoff.  Before the first sample: [3 s * backoff]. *)

val backoff : t -> unit
val reset_backoff : t -> unit
val srtt : t -> Tdat_timerange.Time_us.t option
val backoff_count : t -> int
