lib/tcpsim/connection.mli: Receiver Sender Tcp_types Tdat_netsim Tdat_pkt Tdat_rng Tdat_timerange
