lib/tcpsim/rto.mli: Tdat_timerange
