lib/tcpsim/receiver.ml: Buffer List String Tcp_types Tdat_netsim Tdat_pkt
