lib/tcpsim/connection.ml: Hashtbl Int32 Lazy Receiver Sender Tcp_types Tdat_netsim Tdat_pkt Tdat_timerange
