lib/tcpsim/receiver.mli: Tcp_types Tdat_netsim Tdat_pkt
