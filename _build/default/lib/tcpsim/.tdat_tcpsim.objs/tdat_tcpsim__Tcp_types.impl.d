lib/tcpsim/tcp_types.ml: Tdat_timerange
