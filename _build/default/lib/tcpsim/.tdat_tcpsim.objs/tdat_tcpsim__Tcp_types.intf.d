lib/tcpsim/tcp_types.mli: Tdat_timerange
