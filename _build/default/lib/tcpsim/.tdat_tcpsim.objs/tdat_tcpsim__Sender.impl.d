lib/tcpsim/sender.ml: Buffer Rto Tcp_types Tdat_netsim Tdat_pkt Tdat_rng Tdat_timerange
