lib/tcpsim/sender.mli: Tcp_types Tdat_netsim Tdat_pkt Tdat_rng
