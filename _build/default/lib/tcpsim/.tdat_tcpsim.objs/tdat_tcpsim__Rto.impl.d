lib/tcpsim/rto.ml: Float Option Tdat_timerange
