(** Configuration shared by the TCP endpoints.

    The analyzer assumes only "TCP uses congestion and receive windows to
    control packet delivery (TCP flavours such as Tahoe, Reno, New Reno)"
    (Section III); these are exactly the flavours the simulator offers. *)

type flavor = Tahoe | Reno | New_reno

type config = {
  mss : int;  (** Maximum segment size, bytes. *)
  max_adv_window : int;
      (** Receive-buffer capacity = maximum advertised window (the
          paper's 65 KB for ISP_A vs 16 KB for RouteViews). *)
  flavor : flavor;
  init_cwnd_segments : int;  (** Initial congestion window, in segments. *)
  min_rto : Tdat_timerange.Time_us.t;
  max_rto : Tdat_timerange.Time_us.t;
  rto_backoff : float;
      (** Multiplier per successive timeout; RouteViews' "aggressive
          backoff" uses a larger factor. *)
  delack_time : Tdat_timerange.Time_us.t;
      (** Delayed-ACK timeout; 0 acknowledges every segment
          immediately. *)
  delack_segments : int;  (** ACK at latest every n-th data segment. *)
  persist_interval : Tdat_timerange.Time_us.t;
      (** Initial zero-window probe interval. *)
  window_update_loss_prob : float;
      (** The zero-window-probe implementation bug of Section IV-B: the
          probability that a window-update ACK arriving while the sender
          sits in persist state is incorrectly discarded, leaving the
          sender probing with backoff.  0 disables the bug. *)
}

val default : config
(** 1400-byte MSS, 64 KB window, NewReno, 200 ms min RTO, factor-2
    backoff, delayed ACKs every 2nd segment or 100 ms, no bug. *)
