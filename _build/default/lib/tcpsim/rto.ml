type t = {
  min_rto : Tdat_timerange.Time_us.t;
  max_rto : Tdat_timerange.Time_us.t;
  backoff_factor : float;
  mutable srtt : float option; (* µs *)
  mutable rttvar : float;
  mutable backoffs : int;
}

let initial_rto_us = 3_000_000.

let create ~min_rto ~max_rto ~backoff_factor =
  if backoff_factor < 1.0 then invalid_arg "Rto.create: backoff_factor < 1";
  { min_rto; max_rto; backoff_factor; srtt = None; rttvar = 0.; backoffs = 0 }

let sample t rtt_us =
  let r = float_of_int rtt_us in
  (match t.srtt with
  | None ->
      t.srtt <- Some r;
      t.rttvar <- r /. 2.
  | Some srtt ->
      (* RFC 6298 constants: alpha = 1/8, beta = 1/4. *)
      t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. abs_float (srtt -. r));
      t.srtt <- Some ((0.875 *. srtt) +. (0.125 *. r)));
  t.backoffs <- 0

let current t =
  let base =
    match t.srtt with
    | None -> initial_rto_us
    | Some srtt -> srtt +. (4. *. t.rttvar)
  in
  (* Clamp to the floor first, then back off: RFC 6298 doubles the armed
     RTO, which is never below the minimum. *)
  let clamped = Float.max (float_of_int t.min_rto) base in
  let scaled = clamped *. (t.backoff_factor ** float_of_int t.backoffs) in
  min t.max_rto (int_of_float scaled)

let backoff t = t.backoffs <- t.backoffs + 1
let reset_backoff t = t.backoffs <- 0
let srtt t = Option.map int_of_float t.srtt
let backoff_count t = t.backoffs
