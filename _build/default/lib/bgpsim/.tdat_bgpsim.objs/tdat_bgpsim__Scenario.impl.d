lib/bgpsim/scenario.ml: Collector List Printf Speaker Tdat_bgp Tdat_netsim Tdat_pkt Tdat_rng Tdat_tcpsim Tdat_timerange
