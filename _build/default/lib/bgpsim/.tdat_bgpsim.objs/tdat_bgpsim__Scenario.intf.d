lib/bgpsim/scenario.mli: Collector Tdat_bgp Tdat_pkt Tdat_tcpsim Tdat_timerange
