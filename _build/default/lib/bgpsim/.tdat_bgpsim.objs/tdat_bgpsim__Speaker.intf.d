lib/bgpsim/speaker.mli: Tdat_bgp Tdat_netsim Tdat_rng Tdat_tcpsim Tdat_timerange
