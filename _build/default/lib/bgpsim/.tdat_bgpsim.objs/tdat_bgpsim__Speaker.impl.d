lib/bgpsim/speaker.ml: Array Buffer List String Tdat_bgp Tdat_netsim Tdat_rng Tdat_tcpsim Tdat_timerange
