lib/bgpsim/fleet.ml: Array Collector Float Fun Hashtbl List Option Scenario Tdat_netsim Tdat_pkt Tdat_rng Tdat_tcpsim Tdat_timerange
