lib/bgpsim/fleet.mli: Collector Scenario Tdat_timerange
