lib/bgpsim/collector.ml: List String Tdat_bgp Tdat_netsim Tdat_pkt Tdat_rng Tdat_tcpsim Tdat_timerange
