(** The sending BGP process of an operational router.

    Models the behaviours the paper traces back to senders:

    - {b Timer-driven pacing} (Section II-B1): a periodic timer fires and
      releases at most [quota] messages per tick — the undocumented
      implementation that leaves gaps in table transfers.  A generous
      quota hides the gaps; a small one makes them pronounced.
    - {b Peer groups} (Section II-B3): members share one replicated
      update queue; an entry is cleared only once {e every} live member
      has it acknowledged, and only [group_window] messages may be
      outstanding past the slowest member — the faster session proceeds
      in lockstep with the slower one.
    - {b Keepalive / hold timers}: keepalives flow when idle; a member
      whose acknowledgments stall for [hold_time] is declared failed and
      removed from the group, after which the survivors resume (the
      pathological blocking of Fig. 9 lasts exactly the hold time). *)

type t

type member

val create :
  engine:Tdat_netsim.Engine.t ->
  msgs:Tdat_bgp.Msg.t list ->
  ?timer_interval:Tdat_timerange.Time_us.t ->
  ?timer_jitter:Tdat_timerange.Time_us.t ->
  ?rng:Tdat_rng.Rng.t ->
  ?quota:int ->
  ?group_window:int ->
  ?keepalive_interval:Tdat_timerange.Time_us.t ->
  ?hold_time:Tdat_timerange.Time_us.t ->
  unit ->
  t
(** [msgs] is the table transfer (typically {!Tdat_bgp.Update_gen.pack} of a
    table).  [timer_interval = None] (default) approximates a greedy
    sender with a fine 5 ms tick and unlimited quota.  [group_window]
    defaults to 64 messages; [keepalive_interval] to 30 s; [hold_time]
    to 180 s. *)

val add_member : t -> name:string -> Tdat_tcpsim.Sender.t -> member
(** Register a TCP session as a group member.  Call before {!start}. *)

val start : t -> unit
(** Arm the pacing timer; messages flow once senders establish. *)

val finished : member -> bool
(** All table messages written and acknowledged on this member. *)

val finish_time : member -> Tdat_timerange.Time_us.t option
val failed : member -> bool
val removal_time : member -> Tdat_timerange.Time_us.t option
val name : member -> string

val all_done : t -> bool
(** Every member either finished or failed — the simulation can stop. *)
