module Engine = Tdat_netsim.Engine
module Connection = Tdat_tcpsim.Connection
module Sender = Tdat_tcpsim.Sender
module Endpoint = Tdat_pkt.Endpoint
module Trace = Tdat_pkt.Trace
module Flow = Tdat_pkt.Flow

type router = {
  router_id : int;
  as_number : int;
  table_prefixes : int;
  start_at : Tdat_timerange.Time_us.t;
  sender_tcp : Tdat_tcpsim.Tcp_types.config;
  timer_interval : Tdat_timerange.Time_us.t option;
  timer_jitter : Tdat_timerange.Time_us.t;
  quota : int;
  group_window : int;
  upstream : Tdat_tcpsim.Connection.path;
  keepalive_interval : Tdat_timerange.Time_us.t;
  hold_time : Tdat_timerange.Time_us.t;
}

let router ?as_number ?(table_prefixes = 1500) ?(start_at = 10_000)
    ?(sender_tcp = Tdat_tcpsim.Tcp_types.default) ?timer_interval
    ?(timer_jitter = 0) ?(quota = max_int) ?(group_window = 4096)
    ?(upstream = Connection.path ())
    ?(keepalive_interval = 30_000_000) ?(hold_time = 180_000_000) router_id =
  {
    router_id;
    as_number = (match as_number with Some a -> a | None -> 64500 + router_id);
    table_prefixes;
    start_at;
    sender_tcp;
    timer_interval;
    timer_jitter;
    quota;
    group_window;
    upstream;
    keepalive_interval;
    hold_time;
  }

type outcome = {
  spec : router;
  flow : Flow.t;
  trace : Trace.t;
  tcp_start : Tdat_timerange.Time_us.t;
  mrt : Tdat_bgp.Mrt.record list;
  sender_counters : Sender.counters;
  upstream_drops : int;
  speaker_finished : bool;
  speaker_failed : bool;
  table : Tdat_bgp.Table.t;
}

type run_result = {
  outcomes : outcome list;
  site_trace : Trace.t;
  local_drops : int;
  collector : Collector.t;
}

let router_endpoint r =
  Endpoint.of_quad 10 1 (r.router_id / 250) (1 + (r.router_id mod 250)) (20000 + r.router_id)

let collector_endpoint ip = Endpoint.v ip 179

(* Build the table, the peer-group speaker (single member) and the TCP
   connection for one router; returns finalization hooks. *)
let setup_router ~engine ~rng ~collector r =
  let module R = Tdat_rng.Rng in
  let table_rng = R.split rng in
  let table =
    Tdat_bgp.Table.generate ~rng:table_rng ~n_prefixes:r.table_prefixes ()
  in
  let msgs = Tdat_bgp.Update_gen.pack table in
  let sender_ep = router_endpoint r in
  let receiver_ep = collector_endpoint (Collector.ip collector) in
  let conn_rng = R.split rng in
  let conn =
    Connection.create ~engine ~sender_cfg:r.sender_tcp
      ~receiver_cfg:(Collector.tcp_config collector) ~sender_ep ~receiver_ep
      ~upstream:r.upstream ~site:(Collector.site collector) ~rng:conn_rng ()
  in
  Collector.attach collector conn ~peer_as:r.as_number;
  let speaker_rng = R.split rng in
  let speaker =
    Speaker.create ~engine ~msgs ?timer_interval:r.timer_interval
      ~timer_jitter:r.timer_jitter ~rng:speaker_rng ~quota:r.quota
      ~group_window:r.group_window ~keepalive_interval:r.keepalive_interval
      ~hold_time:r.hold_time ()
  in
  let member =
    Speaker.add_member speaker ~name:(Printf.sprintf "r%d" r.router_id)
      (Connection.sender conn)
  in
  ignore
    (Engine.schedule_at engine r.start_at (fun () ->
         Connection.start conn;
         Speaker.start speaker));
  (table, conn, speaker, member)

let finalize_outcome ~site_trace ~peer_ip (r, table, conn, _speaker, member) =
  let flow = Connection.flow conn in
  let trace =
    Trace.split_connection site_trace
      ~sender:flow.Flow.sender ~receiver:flow.Flow.receiver
  in
  ignore peer_ip;
  {
    spec = r;
    flow;
    trace;
    tcp_start = r.start_at;
    mrt = [];
    sender_counters = Sender.counters (Connection.sender conn);
    upstream_drops = Connection.upstream_drops conn;
    speaker_finished = Speaker.finished member;
    speaker_failed = Speaker.failed member;
    table;
  }

let run ?(seed = 1) ?(collector_kind = Collector.Quagga) ?collector_tcp
    ?(collector_proc_time = 150) ?(collector_proc_jitter = 0.)
    ?collector_local ?collector_fail_at ?(deadline = 3_600_000_000)
    routers =
  let module R = Tdat_rng.Rng in
  let rng = R.create seed in
  let engine = Engine.create () in
  let collector_ip = (Endpoint.of_quad 10 0 0 2 0).Endpoint.ip in
  let collector =
    Collector.create ~engine ~kind:collector_kind ~ip:collector_ip
      ~proc_time_per_msg:collector_proc_time
      ~proc_jitter:collector_proc_jitter ~rng:(R.split rng)
      ?tcp:collector_tcp ?local:collector_local ()
  in
  (match collector_fail_at with
  | Some at -> Collector.fail_at collector at
  | None -> ());
  let setups =
    List.map
      (fun r ->
        let table, conn, speaker, member =
          setup_router ~engine ~rng ~collector r
        in
        (r, table, conn, speaker, member))
      routers
  in
  Engine.run ~until:deadline engine;
  let site_trace = Connection.Site.trace (Collector.site collector) in
  let all_mrt = Collector.mrt collector in
  let outcomes =
    List.map
      (fun ((r, _, conn, _, _) as setup) ->
        let o =
          finalize_outcome ~site_trace ~peer_ip:0l setup
        in
        let flow = Connection.flow conn in
        let peer_ip = flow.Flow.sender.Endpoint.ip in
        let mrt =
          List.filter
            (fun (rec_ : Tdat_bgp.Mrt.record) ->
              rec_.Tdat_bgp.Mrt.peer_ip = peer_ip
              && rec_.Tdat_bgp.Mrt.peer_as = r.as_number)
            all_mrt
        in
        { o with mrt })
      setups
  in
  {
    outcomes;
    site_trace;
    local_drops = Collector.local_drops collector;
    collector;
  }

type peer_group_result = {
  quagga_outcome : outcome;
  vendor_outcome : outcome;
  quagga_collector : Collector.t;
  vendor_collector : Collector.t;
  vendor_removed_at : Tdat_timerange.Time_us.t option;
  quagga_removed_at : Tdat_timerange.Time_us.t option;
}

let run_peer_group ?(seed = 1) ?vendor_fail_at ?quagga_fail_at
    ?(deadline = 3_600_000_000) r =
  let module R = Tdat_rng.Rng in
  let rng = R.create seed in
  let engine = Engine.create () in
  let quagga_ip = (Endpoint.of_quad 10 0 0 2 0).Endpoint.ip in
  let vendor_ip = (Endpoint.of_quad 10 0 0 3 0).Endpoint.ip in
  let quagga =
    Collector.create ~engine ~kind:Collector.Quagga ~ip:quagga_ip
      ~rng:(R.split rng) ()
  in
  let vendor =
    Collector.create ~engine ~kind:Collector.Vendor ~ip:vendor_ip
      ~rng:(R.split rng) ()
  in
  (match vendor_fail_at with
  | Some at -> Collector.fail_at vendor at
  | None -> ());
  (match quagga_fail_at with
  | Some at -> Collector.fail_at quagga at
  | None -> ());
  let table_rng = R.split rng in
  let table =
    Tdat_bgp.Table.generate ~rng:table_rng ~n_prefixes:r.table_prefixes ()
  in
  let msgs = Tdat_bgp.Update_gen.pack table in
  let sender_ep_q = router_endpoint r in
  let sender_ep_v =
    Endpoint.v sender_ep_q.Endpoint.ip (sender_ep_q.Endpoint.port + 1)
  in
  let make_conn collector sender_ep =
    let conn =
      Connection.create ~engine ~sender_cfg:r.sender_tcp
        ~receiver_cfg:(Collector.tcp_config collector) ~sender_ep
        ~receiver_ep:(collector_endpoint (Collector.ip collector))
        ~upstream:r.upstream ~site:(Collector.site collector)
        ~rng:(R.split rng) ()
    in
    Collector.attach collector conn ~peer_as:r.as_number;
    conn
  in
  let conn_q = make_conn quagga sender_ep_q in
  let conn_v = make_conn vendor sender_ep_v in
  let speaker =
    Speaker.create ~engine ~msgs ?timer_interval:r.timer_interval
      ~timer_jitter:r.timer_jitter ~rng:(R.split rng) ~quota:r.quota
      ~group_window:r.group_window ~keepalive_interval:r.keepalive_interval
      ~hold_time:r.hold_time ()
  in
  let member_q = Speaker.add_member speaker ~name:"quagga" (Connection.sender conn_q) in
  let member_v = Speaker.add_member speaker ~name:"vendor" (Connection.sender conn_v) in
  ignore
    (Engine.schedule_at engine r.start_at (fun () ->
         Connection.start conn_q;
         Connection.start conn_v;
         Speaker.start speaker));
  Engine.run ~until:deadline engine;
  let outcome_of collector conn member =
    let site_trace = Connection.Site.trace (Collector.site collector) in
    let flow = Connection.flow conn in
    let trace =
      Trace.split_connection site_trace ~sender:flow.Flow.sender
        ~receiver:flow.Flow.receiver
    in
    {
      spec = r;
      flow;
      trace;
      tcp_start = r.start_at;
      mrt = Collector.mrt collector;
      sender_counters = Sender.counters (Connection.sender conn);
      upstream_drops = Connection.upstream_drops conn;
      speaker_finished = Speaker.finished member;
      speaker_failed = Speaker.failed member;
      table;
    }
  in
  {
    quagga_outcome = outcome_of quagga conn_q member_q;
    vendor_outcome = outcome_of vendor conn_v member_v;
    quagga_collector = quagga;
    vendor_collector = vendor;
    vendor_removed_at = Speaker.removal_time member_v;
    quagga_removed_at = Speaker.removal_time member_q;
  }
