(** Assembling whole monitoring scenarios: one collector, one or more
    operational routers, each performing an initial table transfer over
    its own TCP session, all captured by the collector-side sniffer.

    The output of a run is exactly what the paper's datasets contain
    (Table I): a tcpdump-style packet trace per connection, plus — for
    Quagga collectors — the MRT archive of received updates. *)

type router = {
  router_id : int;
  as_number : int;
  table_prefixes : int;  (** Size of the table this router transfers. *)
  start_at : Tdat_timerange.Time_us.t;  (** TCP open time. *)
  sender_tcp : Tdat_tcpsim.Tcp_types.config;
  timer_interval : Tdat_timerange.Time_us.t option;
      (** Pacing timer ([None] = greedy sender). *)
  timer_jitter : Tdat_timerange.Time_us.t;
  quota : int;  (** Messages per timer tick. *)
  group_window : int;
      (** Peer-group replication-queue depth, in messages. *)
  upstream : Tdat_tcpsim.Connection.path;
  keepalive_interval : Tdat_timerange.Time_us.t;
  hold_time : Tdat_timerange.Time_us.t;
}

val router :
  ?as_number:int ->
  ?table_prefixes:int ->
  ?start_at:Tdat_timerange.Time_us.t ->
  ?sender_tcp:Tdat_tcpsim.Tcp_types.config ->
  ?timer_interval:Tdat_timerange.Time_us.t ->
  ?timer_jitter:Tdat_timerange.Time_us.t ->
  ?quota:int ->
  ?group_window:int ->
  ?upstream:Tdat_tcpsim.Connection.path ->
  ?keepalive_interval:Tdat_timerange.Time_us.t ->
  ?hold_time:Tdat_timerange.Time_us.t ->
  int ->
  router
(** [router id] with defaults: 1500-prefix table, start at 10 ms, default
    TCP, greedy sender, default path. *)

type outcome = {
  spec : router;
  flow : Tdat_pkt.Flow.t;
  trace : Tdat_pkt.Trace.t;  (** This connection's packets only. *)
  tcp_start : Tdat_timerange.Time_us.t;
  mrt : Tdat_bgp.Mrt.record list;  (** This peer's archive (Quagga only). *)
  sender_counters : Tdat_tcpsim.Sender.counters;
  upstream_drops : int;
  speaker_finished : bool;
  speaker_failed : bool;
  table : Tdat_bgp.Table.t;  (** Ground truth table. *)
}

type run_result = {
  outcomes : outcome list;
  site_trace : Tdat_pkt.Trace.t;  (** Everything the sniffer saw. *)
  local_drops : int;
  collector : Collector.t;
}

val run :
  ?seed:int ->
  ?collector_kind:Collector.kind ->
  ?collector_tcp:Tdat_tcpsim.Tcp_types.config ->
  ?collector_proc_time:Tdat_timerange.Time_us.t ->
  ?collector_proc_jitter:float ->
  ?collector_local:Tdat_tcpsim.Connection.path ->
  ?collector_fail_at:Tdat_timerange.Time_us.t ->
  ?deadline:Tdat_timerange.Time_us.t ->
  router list ->
  run_result
(** Simulate the routers' transfers toward one collector.  [deadline]
    (default 1 simulated hour) bounds the run. *)

type peer_group_result = {
  quagga_outcome : outcome;
  vendor_outcome : outcome;
  quagga_collector : Collector.t;
  vendor_collector : Collector.t;
  vendor_removed_at : Tdat_timerange.Time_us.t option;
      (** When the vendor member was removed from the group, if it
          failed (Fig. 9's [t2]). *)
  quagga_removed_at : Tdat_timerange.Time_us.t option;
}

val run_peer_group :
  ?seed:int ->
  ?vendor_fail_at:Tdat_timerange.Time_us.t ->
  ?quagga_fail_at:Tdat_timerange.Time_us.t ->
  ?deadline:Tdat_timerange.Time_us.t ->
  router ->
  peer_group_result
(** The Section II-B3 configuration: one router peers with both a Quagga
    and a Vendor collector in a single peer group.  When
    [vendor_fail_at] is set, the vendor collector dies mid-transfer and
    blocks the group until the hold timer removes it (Fig. 9). *)
