module Engine = Tdat_netsim.Engine
module Sender = Tdat_tcpsim.Sender
module Msg = Tdat_bgp.Msg

type member = {
  member_name : string;
  sender : Sender.t;
  mutable next_msg : int;
  mutable last_write : Tdat_timerange.Time_us.t;
  mutable last_progress : Tdat_timerange.Time_us.t;
  mutable last_acked_bytes : int;
  mutable finish_time : Tdat_timerange.Time_us.t option;
  mutable failed : bool;
  mutable removal_time : Tdat_timerange.Time_us.t option;
}

type t = {
  engine : Engine.t;
  encoded : string array; (* one entry per table message *)
  offsets : int array;    (* cumulative end-offset of message i *)
  tick : Tdat_timerange.Time_us.t;
  timer_jitter : Tdat_timerange.Time_us.t;
  rng : Tdat_rng.Rng.t option;
  quota : int;
  group_window : int;
  keepalive_interval : Tdat_timerange.Time_us.t;
  hold_time : Tdat_timerange.Time_us.t;
  mutable members : member list;
  mutable started : bool;
}

let keepalive_bytes = Msg.encode Msg.keepalive

let create ~engine ~msgs ?timer_interval ?(timer_jitter = 0) ?rng
    ?(quota = max_int) ?(group_window = 4096)
    ?(keepalive_interval = 30_000_000) ?(hold_time = 180_000_000) () =
  let encoded = Array.of_list (List.map Msg.encode msgs) in
  let offsets = Array.make (Array.length encoded) 0 in
  let total = ref 0 in
  Array.iteri
    (fun i bytes ->
      total := !total + String.length bytes;
      offsets.(i) <- !total)
    encoded;
  let tick, quota =
    match timer_interval with
    | Some interval -> (interval, quota)
    | None -> (5_000, max_int) (* greedy sender approximation *)
  in
  if timer_jitter > 0 && rng = None then
    invalid_arg "Speaker.create: timer_jitter needs an rng";
  {
    engine;
    encoded;
    offsets;
    tick;
    timer_jitter;
    rng;
    quota;
    group_window;
    keepalive_interval;
    hold_time;
    members = [];
    started = false;
  }

let add_member t ~name sender =
  if t.started then invalid_arg "Speaker.add_member: already started";
  let m =
    {
      member_name = name;
      sender;
      next_msg = 0;
      last_write = 0;
      last_progress = 0;
      last_acked_bytes = 0;
      finish_time = None;
      failed = false;
      removal_time = None;
    }
  in
  t.members <- t.members @ [ m ];
  m

(* Index of the first message NOT yet fully acknowledged by [m]:
   the count of messages whose end-offset <= acked bytes. *)
let acked_msgs t m =
  let acked = Sender.acked m.sender in
  let n = Array.length t.offsets in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.offsets.(mid) <= acked then lo := mid + 1 else hi := mid
  done;
  !lo

(* The replication-queue head: slowest live member's acknowledged
   progress.  Finished/failed members do not hold the queue. *)
let queue_head t =
  let live =
    List.filter (fun m -> (not m.failed) && m.finish_time = None) t.members
  in
  match live with
  | [] -> Array.length t.encoded
  | _ -> List.fold_left (fun acc m -> min acc (acked_msgs t m)) max_int live

let feed_member t now head m =
  if (not m.failed) && Sender.established m.sender then begin
    (* Detect acknowledgment progress for the hold timer. *)
    let acked = Sender.acked m.sender in
    if acked > m.last_acked_bytes then begin
      m.last_acked_bytes <- acked;
      m.last_progress <- now
    end;
    (* Hold-timer expiry: the peer stopped acknowledging. *)
    if
      Sender.in_flight m.sender > 0
      && m.last_progress > 0
      && now - m.last_progress > t.hold_time
    then begin
      m.failed <- true;
      m.removal_time <- Some now;
      Sender.stop m.sender
    end
    else begin
      let n = Array.length t.encoded in
      let limit = min n (head + t.group_window) in
      let sent = ref 0 in
      (* Batch the tick's quota into one socket write, as real BGP
         implementations flush whole output buffers: TCP then packs the
         stream into MSS-sized segments instead of one tiny segment per
         message. *)
      let batch = Buffer.create 4096 in
      while m.next_msg < limit && !sent < t.quota do
        Buffer.add_string batch t.encoded.(m.next_msg);
        m.next_msg <- m.next_msg + 1;
        incr sent
      done;
      if !sent > 0 then begin
        Sender.write m.sender (Buffer.contents batch);
        m.last_write <- now
      end;
      if m.last_progress = 0 && !sent > 0 then m.last_progress <- now;
      (* Keepalive when the session has been idle. *)
      if !sent = 0 && now - m.last_write >= t.keepalive_interval then begin
        Sender.write m.sender keepalive_bytes;
        m.last_write <- now
      end;
      (* Completion check. *)
      if
        m.finish_time = None && m.next_msg = n
        && Sender.all_acked m.sender
      then m.finish_time <- Some now
    end
  end

let all_done t =
  List.for_all (fun m -> m.failed || m.finish_time <> None) t.members

let start t =
  if t.started then invalid_arg "Speaker.start: already started";
  t.started <- true;
  let rec tick () =
    let now = Engine.now t.engine in
    let head = queue_head t in
    List.iter (feed_member t now head) t.members;
    if not (all_done t) then begin
      let jitter =
        match (t.timer_jitter, t.rng) with
        | 0, _ | _, None -> 0
        | j, Some rng -> Tdat_rng.Rng.int rng (j + 1)
      in
      ignore (Engine.schedule_after t.engine (t.tick + jitter) tick)
    end
  in
  ignore (Engine.schedule_after t.engine t.tick tick)

let finished m = m.finish_time <> None
let finish_time m = m.finish_time
let failed m = m.failed
let removal_time m = m.removal_time
let name m = m.member_name
