module R = Tdat_rng.Rng
module Connection = Tdat_tcpsim.Connection
module Tcp_types = Tdat_tcpsim.Tcp_types

type dataset = Isp_vendor | Isp_quagga | Routeviews

let name = function
  | Isp_vendor -> "ISP_A-1 (Vendor)"
  | Isp_quagga -> "ISP_A-2 (Quagga)"
  | Routeviews -> "RV"

let all = [ Isp_vendor; Isp_quagga; Routeviews ]

type meta = {
  dataset : dataset;
  batch : int;
  concurrent : int;
  router_id : int;
  true_timer : Tdat_timerange.Time_us.t option;
  true_pronounced : bool;
  true_loss_burst : bool;
  blocking_incident : bool;
  zero_bug : bool;
}

type record = { meta : meta; outcome : Scenario.outcome }

type summary = {
  transfers : int;
  packets : int;
  bytes : int;
  routers : int;
  mrt_updates : int;
}

(* ---- per-dataset parameters ------------------------------------------- *)

type params = {
  n_routers : int;
  n_transfers : int;
  timers : (float * Tdat_timerange.Time_us.t) list;
  timer_router_frac : float;
  pronounced_prob : float;
  pronounced_ticks : int;  (** Transfer length in ticks when pronounced. *)
  paced_ticks : int;       (** ... when the quota hides the gaps. *)
  delay_range : int * int; (** One-way upstream delay, µs. *)
  table_range : int * int; (** Prefixes per table. *)
  loss_burst_prob : float;
  burst_len_range : int * int;  (** µs. *)
  burst_drop : float;
  bg_loss : float;
  collector_proc : int;         (** µs per message. *)
  collector_window : int;
  local_bandwidth_bps : int;    (** Sniffer→collector local link. *)
  local_buffer_pkts : int;
  local_loss : float;           (** Receiver-local drop rate when congested. *)
  local_loss_prob : float;      (** Probability a batch's local link is congested. *)
  sender_min_rto : int;
  sender_backoff : float;
  storm_sizes : (float * int) list;
  blocking_incidents : int;
  zero_bug_sessions : int;
}

let params = function
  | Isp_vendor ->
      {
        n_routers = 24;
        (* The paper's 10396 transfers (a vendor bug caused constant
           session resets) scaled by a tenth. *)
        n_transfers = 1040;
        timers = [ (0.75, 200_000); (0.25, 400_000) ];
        timer_router_frac = 0.6;
        pronounced_prob = 0.13;
        pronounced_ticks = 25;
        paced_ticks = 5;
        delay_range = (300, 12_000);
        table_range = (3_000, 9_000);
        loss_burst_prob = 0.30;
        burst_len_range = (60_000, 250_000);
        burst_drop = 0.5;
        bg_loss = 0.0003;
        collector_proc = 600;
        collector_window = 65_535;
        local_bandwidth_bps = 300_000_000;
        local_buffer_pkts = 40;
        local_loss = 0.01;
        local_loss_prob = 0.05;
        sender_min_rto = 200_000;
        sender_backoff = 2.0;
        storm_sizes =
          [ (0.25, 1); (0.3, 4); (0.25, 8); (0.15, 12); (0.05, 16) ];
        blocking_incidents = 8;
        zero_bug_sessions = 2;
      }
  | Isp_quagga ->
      {
        n_routers = 27;
        n_transfers = 436;
        timers = [ (0.5, 100_000); (0.5, 200_000) ];
        timer_router_frac = 0.7;
        pronounced_prob = 0.35;
        pronounced_ticks = 90;
        paced_ticks = 20;
        delay_range = (300, 12_000);
        table_range = (3_000, 10_000);
        loss_burst_prob = 0.5;
        burst_len_range = (100_000, 400_000);
        burst_drop = 0.5;
        bg_loss = 0.0003;
        (* The PC-based Quagga collector processes updates much slower
           than the vendor box, and its failures trigger restart storms. *)
        collector_proc = 500;
        collector_window = 65_535;
        local_bandwidth_bps = 150_000_000;
        local_buffer_pkts = 30;
        local_loss = 0.01;
        local_loss_prob = 0.08;
        sender_min_rto = 200_000;
        sender_backoff = 2.0;
        storm_sizes =
          [ (0.35, 1); (0.25, 3); (0.2, 8); (0.12, 16); (0.08, 27) ];
        blocking_incidents = 8;
        zero_bug_sessions = 2;
      }
  | Routeviews ->
      {
        n_routers = 59;
        n_transfers = 94;
        timers = [ (0.5, 80_000); (0.5, 400_000) ];
        timer_router_frac = 0.5;
        pronounced_prob = 0.22;
        pronounced_ticks = 45;
        paced_ticks = 8;
        (* eBGP peers across the Internet. *)
        delay_range = (5_000, 120_000);
        table_range = (4_000, 12_000);
        loss_burst_prob = 0.25;
        burst_len_range = (500_000, 1_500_000);
        burst_drop = 0.25;
        bg_loss = 0.001;
        collector_proc = 200;
        (* RouteViews' much smaller maximum advertised window. *)
        collector_window = 16_384;
        (* A congested collector interface: slow-start bursts overflow the
           small input buffer, producing the receiver-local consecutive
           losses prominent in the RV rows of Tables IV and V. *)
        local_bandwidth_bps = 50_000_000;
        local_buffer_pkts = 6;
        local_loss = 0.02;
        local_loss_prob = 0.35;
        (* "TCP connections back off more aggressively ... RTO increases
           promptly to a few seconds after two or three timeouts". *)
        sender_min_rto = 500_000;
        sender_backoff = 3.0;
        storm_sizes = [ (0.7, 1); (0.2, 2); (0.1, 3) ];
        blocking_incidents = 3;
        zero_bug_sessions = 1;
      }

let routers_in d = (params d).n_routers

let scaled scale n = max 1 (int_of_float (Float.round (float_of_int n *. scale)))

let transfers_in ?(scale = 1.0) d = scaled scale (params d).n_transfers

let collector_kind = function
  | Isp_vendor -> Collector.Vendor
  | Isp_quagga -> Collector.Quagga
  | Routeviews -> Collector.Vendor

(* ---- router population -------------------------------------------------- *)

type rprofile = {
  rid : int;
  delay : int;
  table_base : int;
  timer : Tdat_timerange.Time_us.t option;
}

let make_population rng p =
  Array.init p.n_routers (fun i ->
      let lo, hi = p.delay_range in
      let tlo, thi = p.table_range in
      {
        rid = i + 1;
        delay = R.int_in rng lo hi;
        table_base = R.int_in rng tlo thi;
        timer =
          (if R.bernoulli rng p.timer_router_frac then
             Some (R.weighted rng p.timers)
           else None);
      })

(* ---- building one transfer spec ------------------------------------------ *)

(* Estimated number of UPDATE messages a table of [prefixes] packs into
   (path pool of prefixes/6, a few prefixes per update). *)
let est_messages prefixes = max 10 (prefixes / 6)

let make_spec rng p ~(router : rprofile) ~start_at =
  let table_prefixes =
    router.table_base * R.int_in rng 90 110 / 100
  in
  let pronounced =
    router.timer <> None && R.bernoulli rng p.pronounced_prob
  in
  let quota =
    match router.timer with
    | None -> max_int
    | Some _ ->
        let msgs = est_messages table_prefixes in
        if pronounced then max 3 (msgs / p.pronounced_ticks)
        else max 20 (msgs / p.paced_ticks)
  in
  let burst = R.bernoulli rng p.loss_burst_prob in
  let data_loss =
    let bg =
      if p.bg_loss > 0. then Tdat_netsim.Loss.bernoulli (R.split rng) p.bg_loss
      else Tdat_netsim.Loss.none
    in
    if burst then begin
      let blo, bhi = p.burst_len_range in
      let len = R.int_in rng blo bhi in
      let t0 = start_at + R.int_in rng 50_000 800_000 in
      let window =
        Tdat_timerange.Span_set.of_span (Tdat_timerange.Span.v t0 (t0 + len))
      in
      Tdat_netsim.Loss.combine bg
        (Tdat_netsim.Loss.bernoulli_during (R.split rng) window p.burst_drop)
    end
    else bg
  in
  let sender_tcp =
    {
      Tcp_types.default with
      min_rto = p.sender_min_rto;
      rto_backoff = p.sender_backoff;
    }
  in
  let upstream =
    Connection.path ~delay:router.delay
      ~bandwidth_bps:1_000_000_000 ~buffer_pkts:256 ~data_loss ()
  in
  (* Pronounced timers tick regularly; the rest wander ("the distribution
     of gap length is less regular", Section II-B1), which is what keeps
     them out of the knee detector. *)
  let timer_jitter =
    match router.timer with
    | Some t when pronounced -> t / 20
    | Some t -> 2 * t
    | None -> 0
  in
  let spec =
    Scenario.router ~table_prefixes ~start_at ~sender_tcp
      ?timer_interval:router.timer ~timer_jitter ~quota ~upstream router.rid
  in
  (spec, pronounced, burst)

let collector_tcp p = { Tcp_types.default with max_adv_window = p.collector_window }

(* ---- main loop -------------------------------------------------------------- *)

let run ?(seed = 9001) ?(scale = 1.0) dataset ~f =
  let p = params dataset in
  let rng = R.create (seed + Hashtbl.hash dataset) in
  let population = make_population rng p in
  let target = scaled scale p.n_transfers in
  let blocking = if scale >= 1.0 then p.blocking_incidents
    else max 1 (scaled scale p.blocking_incidents) in
  let zero_bugs = if scale >= 1.0 then p.zero_bug_sessions
    else min 1 p.zero_bug_sessions in
  let normal = max 0 (target - blocking - zero_bugs) in
  let produced = ref 0 and batch_id = ref 0 in
  (* Rotate through the population so every router contributes transfers
     before any repeats (the paper's per-router stretch analysis needs
     multiple transfers per router, and Table I lists full coverage). *)
  let rotation = ref [] in
  let next_router () =
    (match !rotation with
    | [] ->
        let idx = Array.init p.n_routers Fun.id in
        R.shuffle rng idx;
        rotation := Array.to_list idx
    | _ -> ());
    match !rotation with
    | i :: rest ->
        rotation := rest;
        population.(i)
    | [] -> assert false
  in
  let transfers = ref 0 and packets = ref 0 and bytes = ref 0 in
  let mrt_updates = ref 0 in
  let routers_seen = Hashtbl.create 64 in
  let emit meta (outcome : Scenario.outcome) =
    incr transfers;
    packets := !packets + Tdat_pkt.Trace.length outcome.Scenario.trace;
    bytes := !bytes + Tdat_pkt.Trace.total_bytes outcome.Scenario.trace;
    mrt_updates := !mrt_updates + List.length outcome.Scenario.mrt;
    Hashtbl.replace routers_seen meta.router_id ();
    f { meta; outcome }
  in
  (* Normal batches: storms and singles. *)
  while !produced < normal do
    incr batch_id;
    let size = min (normal - !produced) (R.weighted rng p.storm_sizes) in
    let size = min size p.n_routers in
    let specs =
      (* Draw distinct routers for this storm from the rotation. *)
      let seen = Hashtbl.create 8 in
      let rec draw acc k =
        if k = 0 then List.rev acc
        else begin
          let router = next_router () in
          if Hashtbl.mem seen router.rid then draw acc k
          else begin
            Hashtbl.add seen router.rid ();
            let start_at = 10_000 + R.int rng 2_000_000 in
            let spec, pronounced, burst = make_spec rng p ~router ~start_at in
            draw ((router, spec, pronounced, burst) :: acc) (k - 1)
          end
        end
      in
      draw [] size
    in
    let result =
      Scenario.run ~seed:(seed + (1000 * !batch_id))
        ~collector_kind:(collector_kind dataset)
        ~collector_tcp:(collector_tcp p) ~collector_proc_time:p.collector_proc
        ~collector_local:
          (Connection.path ~delay:50 ~bandwidth_bps:p.local_bandwidth_bps
             ~buffer_pkts:p.local_buffer_pkts
             ~data_loss:
               (if p.local_loss > 0. && R.bernoulli rng p.local_loss_prob
                then
                  (* Bursty interface congestion: clustered drops hit
                     retransmissions too, producing the long consecutive
                     redelivery episodes of Section II-B2. *)
                  Tdat_netsim.Loss.gilbert (R.split rng)
                    ~p_enter:(p.local_loss /. 2.) ~p_exit:0.03
                    ~p_loss_bad:0.6
                else Tdat_netsim.Loss.none)
             ())
        ~deadline:600_000_000
        (List.map (fun (_, s, _, _) -> s) specs)
    in
    List.iter2
      (fun (router, _, pronounced, burst) outcome ->
        emit
          {
            dataset;
            batch = !batch_id;
            concurrent = List.length specs;
            router_id = router.rid;
            true_timer = router.timer;
            true_pronounced = pronounced;
            true_loss_burst = burst;
            blocking_incident = false;
            zero_bug = false;
          }
          outcome)
      specs result.Scenario.outcomes;
    produced := !produced + List.length specs
  done;
  (* Peer-group blocking incidents: the observed member is blocked by the
     failure of its sibling on the other collector. *)
  for k = 1 to blocking do
    incr batch_id;
    let router = next_router () in
    let spec, _, _ = make_spec rng p ~router ~start_at:10_000 in
    (* Blocking is only visible on paced senders still mid-transfer; force
       a modest quota and a small group window. *)
    let spec =
      Scenario.router ~table_prefixes:spec.Scenario.table_prefixes
        ~start_at:10_000 ~sender_tcp:spec.Scenario.sender_tcp
        ~timer_interval:
          (Option.value router.timer ~default:200_000)
        ~quota:6 ~group_window:32 ~upstream:spec.Scenario.upstream
        router.rid
    in
    let fail_at = 400_000 + R.int rng 1_000_000 in
    let pg =
      match collector_kind dataset with
      | Collector.Quagga ->
          (* Observed collector is the Quagga one: the vendor sibling
             fails and blocks the group. *)
          Scenario.run_peer_group ~seed:(seed + (1000 * !batch_id))
            ~vendor_fail_at:fail_at ~deadline:1_200_000_000 spec
      | Collector.Vendor ->
          Scenario.run_peer_group ~seed:(seed + (1000 * !batch_id))
            ~quagga_fail_at:fail_at ~deadline:1_200_000_000 spec
    in
    let outcome =
      match collector_kind dataset with
      | Collector.Quagga -> pg.Scenario.quagga_outcome
      | Collector.Vendor -> pg.Scenario.vendor_outcome
    in
    ignore k;
    emit
      {
        dataset;
        batch = !batch_id;
        concurrent = 1;
        router_id = router.rid;
        true_timer = router.timer;
        true_pronounced = false;
        true_loss_burst = false;
        blocking_incident = true;
        zero_bug = false;
      }
      outcome
  done;
  (* Zero-window-bug sessions: buggy sender against a slow, small-window
     collector with some sender-side drops. *)
  for k = 1 to zero_bugs do
    incr batch_id;
    let router = next_router () in
    let sender_tcp =
      {
        Tcp_types.default with
        min_rto = p.sender_min_rto;
        rto_backoff = p.sender_backoff;
        window_update_loss_prob = 0.5;
      }
    in
    let upstream =
      Connection.path ~delay:router.delay
        ~data_loss:(Tdat_netsim.Loss.bernoulli (R.split rng) 0.05)
        ()
    in
    let spec =
      Scenario.router ~table_prefixes:router.table_base ~start_at:10_000
        ~sender_tcp ~upstream router.rid
    in
    let result =
      Scenario.run ~seed:(seed + (1000 * !batch_id))
        ~collector_kind:(collector_kind dataset)
        ~collector_tcp:{ Tcp_types.default with max_adv_window = 8_192 }
        ~collector_proc_time:2_000 ~deadline:600_000_000 [ spec ]
    in
    ignore k;
    emit
      {
        dataset;
        batch = !batch_id;
        concurrent = 1;
        router_id = router.rid;
        true_timer = None;
        true_pronounced = false;
        true_loss_burst = true;
        blocking_incident = false;
        zero_bug = true;
      }
      (List.hd result.Scenario.outcomes)
  done;
  {
    transfers = !transfers;
    packets = !packets;
    bytes = !bytes;
    routers = Hashtbl.length routers_seen;
    mrt_updates = !mrt_updates;
  }
