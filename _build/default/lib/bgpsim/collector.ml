module Engine = Tdat_netsim.Engine
module Connection = Tdat_tcpsim.Connection
module Receiver = Tdat_tcpsim.Receiver
module Msg = Tdat_bgp.Msg
module Mrt = Tdat_bgp.Mrt

type kind = Quagga | Vendor

type session = {
  conn : Connection.t;
  peer_as : int;
  peer_ip : int32;
  mutable parsed_upto : int; (* stream offset parsed into jobs *)
  mutable processing : bool; (* a job for this session is queued/running *)
}

type t = {
  engine : Engine.t;
  kind : kind;
  ip : int32;
  local_as : int;
  proc_time : Tdat_timerange.Time_us.t;
  proc_jitter : float;
  rng : Tdat_rng.Rng.t option;
  tcp : Tdat_tcpsim.Tcp_types.config;
  site : Connection.Site.t;
  mutable sessions : session list;
  mutable cpu_free_at : Tdat_timerange.Time_us.t;
  mutable mrt : Mrt.record list; (* reverse order *)
  mutable processed : int;
  mutable failed : bool;
}

let create ~engine ~kind ~ip ?(local_as = 65000)
    ?(proc_time_per_msg = 150) ?(proc_jitter = 0.) ?rng
    ?(tcp = Tdat_tcpsim.Tcp_types.default) ?local () =
  if proc_jitter > 0. && rng = None then
    invalid_arg "Collector.create: proc_jitter needs an rng";
  let local =
    match local with
    | Some p -> p
    | None -> Connection.path ~delay:50 ~bandwidth_bps:1_000_000_000 ()
  in
  let site = Connection.Site.create ~engine ?rng ~local () in
  {
    engine;
    kind;
    ip;
    local_as;
    proc_time = proc_time_per_msg;
    proc_jitter;
    rng;
    tcp;
    site;
    sessions = [];
    cpu_free_at = 0;
    mrt = [];
    processed = 0;
    failed = false;
  }

let kind t = t.kind
let site t = t.site
let tcp_config t = t.tcp
let ip t = t.ip
let mrt t = List.rev t.mrt
let messages_processed t = t.processed
let local_drops t = Connection.Site.local_drops t.site

let job_cost t =
  match (t.proc_jitter, t.rng) with
  | j, Some rng when j > 0. ->
      let mult = 1.0 +. Tdat_rng.Rng.exponential rng ~mean:j in
      int_of_float (float_of_int t.proc_time *. mult)
  | _ -> t.proc_time

(* Pump a session: parse complete messages out of the receive buffer and
   run them through the shared CPU one at a time.  The buffer bytes are
   consumed only when their message finishes processing, so a busy CPU
   back-pressures into the advertised window. *)
let rec pump t s =
  if (not s.processing) && not t.failed then begin
    let rcv = Connection.receiver s.conn in
    let stream = Receiver.peek rcv in
    (* [parsed_upto] counts bytes already consumed from the stream; the
       peek buffer always starts at the current consume point. *)
    match Msg.peek_length stream 0 with
    | Some mlen when String.length stream >= mlen ->
        s.processing <- true;
        let now = Engine.now t.engine in
        let start = max now t.cpu_free_at in
        let finish = start + job_cost t in
        t.cpu_free_at <- finish;
        ignore
          (Engine.schedule_at t.engine finish (fun () ->
               if not t.failed then begin
                 let msg_bytes = String.sub stream 0 mlen in
                 (match Msg.decode msg_bytes 0 with
                 | Some (msg, _) ->
                     t.processed <- t.processed + 1;
                     if t.kind = Quagga then
                       t.mrt <-
                         {
                           Mrt.ts = Engine.now t.engine;
                           peer_as = s.peer_as;
                           local_as = t.local_as;
                           peer_ip = s.peer_ip;
                           local_ip = t.ip;
                           msg;
                         }
                         :: t.mrt
                 | None -> ());
                 Receiver.consume rcv mlen;
                 s.parsed_upto <- s.parsed_upto + mlen;
                 s.processing <- false;
                 pump t s
               end))
    | _ -> ()
  end

let attach t conn ~peer_as =
  let flow = Connection.flow conn in
  let peer_ip = flow.Tdat_pkt.Flow.sender.Tdat_pkt.Endpoint.ip in
  let s = { conn; peer_as; peer_ip; parsed_upto = 0; processing = false } in
  t.sessions <- s :: t.sessions;
  Receiver.set_on_data (Connection.receiver conn) (fun () -> pump t s)

let fail_at t at =
  ignore
    (Engine.schedule_at t.engine at (fun () ->
         t.failed <- true;
         List.iter
           (fun s -> Receiver.kill (Connection.receiver s.conn))
           t.sessions))
