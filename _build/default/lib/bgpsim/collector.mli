(** The receiving side: a BGP data collector (Fig. 1).

    A collector is one box: a shared {!Tdat_tcpsim.Connection.Site} (the
    sniffer and the local link whose finite buffer produces receiver-local
    drops), a shared BGP process with finite message-processing capacity
    (the "BGP receiver app" delay factor — concurrent table transfers
    queue for the same CPU, Fig. 15), and, for Quagga collectors, an MRT
    archive of everything received.

    The receive buffer of each TCP connection is consumed only after the
    BGP process has parsed and processed the messages in it, so a
    saturated process closes the advertised windows of {e all} its
    sessions. *)

type kind = Quagga | Vendor

type t

val create :
  engine:Tdat_netsim.Engine.t ->
  kind:kind ->
  ip:int32 ->
  ?local_as:int ->
  ?proc_time_per_msg:Tdat_timerange.Time_us.t ->
  ?proc_jitter:float ->
  ?rng:Tdat_rng.Rng.t ->
  ?tcp:Tdat_tcpsim.Tcp_types.config ->
  ?local:Tdat_tcpsim.Connection.path ->
  unit ->
  t
(** [proc_time_per_msg] is the CPU cost of one BGP message (default
    150 µs); [proc_jitter] an exponential multiplier spread (default 0,
    deterministic).  [tcp] sets the collector-side TCP configuration,
    notably [max_adv_window]. *)

val kind : t -> kind
val site : t -> Tdat_tcpsim.Connection.Site.t
val tcp_config : t -> Tdat_tcpsim.Tcp_types.config
val ip : t -> int32

val attach : t -> Tdat_tcpsim.Connection.t -> peer_as:int -> unit
(** Register a connection whose receiver this collector's BGP process
    will drain.  The connection must have been created with this
    collector's {!site} and {!tcp_config}. *)

val mrt : t -> Tdat_bgp.Mrt.record list
(** The archive, in arrival order.  Empty for [Vendor] collectors (they
    "work as a looking glass" and keep no archive). *)

val messages_processed : t -> int

val fail_at : t -> Tdat_timerange.Time_us.t -> unit
(** Schedule a whole-box failure: every attached receiver stops
    responding (Fig. 9's [t1]). *)

val local_drops : t -> int
