(** Synthesis of the paper's three datasets (Table I).

    Each dataset is a population of operational routers with persistent
    characteristics (path RTT, table size, pacing-timer behaviour, loss
    propensity) and a schedule of table-transfer events — reset storms
    where many routers reopen sessions toward the collector at once
    (the ISP_A vendor bug; collector failures), plus isolated session
    resets, peer-group blocking incidents, and a few zero-window-bug
    sessions.

    Counts are scaled relative to the paper (ISP_A-1's 10396 transfers
    become 1040 at the default [scale = 1.0]; the other datasets keep
    their published counts), and tables are a few thousand prefixes
    instead of ~300k; see DESIGN.md for the substitution argument.

    Transfers are simulated batch by batch and handed to the caller's
    callback one at a time, so whole-dataset runs stay within a bounded
    memory footprint. *)

type dataset = Isp_vendor | Isp_quagga | Routeviews

val name : dataset -> string
(** "ISP_A-1 (Vendor)", "ISP_A-2 (Quagga)", "RV". *)

val all : dataset list

type meta = {
  dataset : dataset;
  batch : int;          (** Batch (storm) index. *)
  concurrent : int;     (** Transfers sharing the collector in this batch. *)
  router_id : int;
  true_timer : Tdat_timerange.Time_us.t option;
      (** Ground truth: the sender's pacing timer, if any. *)
  true_pronounced : bool;
      (** Whether the quota was small enough to leave pronounced gaps. *)
  true_loss_burst : bool;  (** A congestion burst was injected. *)
  blocking_incident : bool;
  zero_bug : bool;
}

type record = { meta : meta; outcome : Scenario.outcome }

type summary = {
  transfers : int;
  packets : int;
  bytes : int;
  routers : int;
  mrt_updates : int;
}

val routers_in : dataset -> int
(** Population size: 24 / 27 / 59, as in Table I. *)

val transfers_in : ?scale:float -> dataset -> int
(** Scheduled transfer count at the given scale (default 1.0):
    1040 / 436 / 94. *)

val collector_kind : dataset -> Collector.kind

val run :
  ?seed:int -> ?scale:float -> dataset -> f:(record -> unit) -> summary
(** Simulate the whole dataset, invoking [f] once per transfer.  The
    callback owns the record; nothing heavy is retained afterwards. *)
