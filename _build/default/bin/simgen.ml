(* simgen: synthesize a monitored BGP table transfer and write the
   sniffer's view as a pcap file (plus the collector's MRT archive), so
   the T-DAT CLI can be exercised end to end without operational data. *)

open Cmdliner

let generate out_pcap out_mrt prefixes timer_ms quota seed rtt_ms loss =
  let upstream =
    Tdat_tcpsim.Connection.path
      ~delay:(int_of_float (rtt_ms *. 500.))
      ~data_loss:
        (if loss > 0. then
           Tdat_netsim.Loss.bernoulli (Tdat_rng.Rng.create (seed + 1)) loss
         else Tdat_netsim.Loss.none)
      ()
  in
  let router =
    Tdat_bgpsim.Scenario.router ~table_prefixes:prefixes
      ?timer_interval:
        (if timer_ms > 0 then Some (timer_ms * 1000) else None)
      ~quota ~upstream 1
  in
  let result = Tdat_bgpsim.Scenario.run ~seed [ router ] in
  let o = List.hd result.Tdat_bgpsim.Scenario.outcomes in
  Tdat_pkt.Pcap.to_file out_pcap o.Tdat_bgpsim.Scenario.trace;
  Printf.printf "wrote %s (%d packets, %d bytes of BGP)\n" out_pcap
    (Tdat_pkt.Trace.length o.Tdat_bgpsim.Scenario.trace)
    (Tdat_pkt.Trace.total_bytes o.Tdat_bgpsim.Scenario.trace);
  (match out_mrt with
  | Some path ->
      Tdat_bgp.Mrt.to_file path o.Tdat_bgpsim.Scenario.mrt;
      Printf.printf "wrote %s (%d MRT records)\n" path
        (List.length o.Tdat_bgpsim.Scenario.mrt)
  | None -> ());
  0

let out_pcap_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"OUT.pcap" ~doc:"Output packet trace.")

let out_mrt_arg =
  Arg.(value & opt (some string) None
       & info [ "mrt" ] ~docv:"OUT.mrt"
           ~doc:"Also write the collector's MRT archive.")

let prefixes_arg =
  Arg.(value & opt int 4000
       & info [ "prefixes" ] ~doc:"Table size in prefixes.")

let timer_arg =
  Arg.(value & opt int 200
       & info [ "timer-ms" ]
           ~doc:"Sender pacing timer in milliseconds (0 = greedy sender).")

let quota_arg =
  Arg.(value & opt int 10
       & info [ "quota" ] ~doc:"Messages released per timer tick.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic RNG seed.")

let rtt_arg =
  Arg.(value & opt float 4.0
       & info [ "rtt-ms" ] ~doc:"Round-trip time between router and collector.")

let loss_arg =
  Arg.(value & opt float 0.0
       & info [ "loss" ] ~doc:"Upstream random loss probability.")

let cmd =
  let doc = "synthesize a monitored BGP table transfer as pcap (+ MRT)" in
  Cmd.v
    (Cmd.info "simgen" ~version:"1.0.0" ~doc)
    Term.(const generate $ out_pcap_arg $ out_mrt_arg $ prefixes_arg
          $ timer_arg $ quota_arg $ seed_arg $ rtt_arg $ loss_arg)

let () = exit (Cmd.eval' cmd)
