(* The T-DAT command line: analyze the BGP sessions in a pcap file and
   explain where each table transfer's time went. *)

open Cmdliner

let analyze_file pcap_path mrt_path show_series sender_side =
  let trace = Tdat_pkt.Pcap.of_file pcap_path in
  let mrt = Option.map Tdat_bgp.Mrt.of_file mrt_path in
  let config =
    if sender_side then
      { Tdat.Series_gen.default_config with sniffer_location = `Near_sender }
    else Tdat.Series_gen.default_config
  in
  let results =
    Tdat.Analyzer.analyze_all ~config ?mrt trace
  in
  if results = [] then prerr_endline "no TCP connections found in trace";
  List.iter
    (fun (_, a) ->
      print_endline (Tdat.Report.to_string a);
      if show_series then begin
        print_endline "-- event series --";
        print_string (Tdat.Report.series_timeline a.Tdat.Analyzer.series)
      end;
      print_newline ())
    results;
  0

let pcap_arg =
  let doc = "Packet trace to analyze (libpcap format, Ethernet/IPv4/TCP)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.pcap" ~doc)

let mrt_arg =
  let doc =
    "Optional MRT archive (BGP4MP) from the collector; when present it \
     drives the MCT transfer-end estimation instead of in-trace \
     reconstruction."
  in
  Arg.(value & opt (some file) None & info [ "mrt" ] ~docv:"ARCHIVE.mrt" ~doc)

let series_arg =
  let doc = "Also print the square-wave event-series timeline (Fig. 11)." in
  Arg.(value & flag & info [ "series" ] ~doc)

let sender_side_arg =
  let doc =
    "The sniffer was located at the sender side (loss locality is \
     interpreted accordingly and ACK shifting becomes a no-op)."
  in
  Arg.(value & flag & info [ "sender-side" ] ~doc)

let cmd =
  let doc = "TCP delay analysis for BGP table transfers (T-DAT)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads a bidirectional packet trace, identifies the BGP table \
         transfer on every TCP connection, rewrites the trace to \
         approximate the sender-side view, generates the 34 event series, \
         and attributes the transfer delay to sender / receiver / network \
         factors.  Known transport problems (timer gaps, consecutive \
         losses, peer-group blocking, the zero-window ACK bug) are \
         reported when detected.";
    ]
  in
  Cmd.v
    (Cmd.info "tdat" ~version:"1.0.0" ~doc ~man)
    Term.(const analyze_file $ pcap_arg $ mrt_arg $ series_arg
          $ sender_side_arg)

let () = exit (Cmd.eval' cmd)
