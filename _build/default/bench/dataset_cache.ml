(* Runs the three synthetic datasets once, pushes every transfer through
   the full T-DAT pipeline, and keeps one compact summary per transfer.
   Every table/figure experiment reads from this cache, so the expensive
   simulation happens exactly once per bench invocation. *)

open Tdat
module Fleet = Tdat_bgpsim.Fleet
module Scenario = Tdat_bgpsim.Scenario

type transfer = {
  meta : Fleet.meta;
  duration_s : float;  (** Table-transfer duration (MCT). *)
  bytes : int;
  packets : int;
  r_sender : float;
  r_receiver : float;
  r_network : float;
  major : Factors.group list;
  factors : (Factors.factor * float) list;
  dominant : Factors.factor option;
  timer : Detect_timer.result option;
  consec8 : int * Tdat_timerange.Time_us.t;
      (** Episodes at the paper's threshold 8, and loss-recovery time. *)
  consec4 : int;  (** Episodes at the scaled threshold 4. *)
  blocked_delay : Tdat_timerange.Time_us.t;  (** Peer-group suspects. *)
  zero_bug : Tdat_timerange.Time_us.t option;
}

type dataset_run = {
  dataset : Fleet.dataset;
  summary : Fleet.summary;
  transfers : transfer list;
}

let analyze_record (r : Fleet.record) =
  let o = r.Fleet.outcome in
  let a =
    Analyzer.analyze o.Scenario.trace ~flow:o.Scenario.flow ~mrt:o.Scenario.mrt
  in
  let duration_s =
    match a.Analyzer.transfer with
    | Some tr -> Tdat_timerange.Time_us.to_s (Transfer_id.duration tr)
    | None -> 0.
  in
  let f = a.Analyzer.factors in
  let group g = List.assoc g f.Factors.group_ratios in
  let p = a.Analyzer.problems in
  let cl = p.Analyzer.consecutive_losses in
  let cl4 = Detect_loss.detect ~threshold:4 a.Analyzer.series in
  {
    meta = r.Fleet.meta;
    duration_s;
    bytes = Tdat_pkt.Trace.total_bytes o.Scenario.trace;
    packets = Tdat_pkt.Trace.length o.Scenario.trace;
    r_sender = group Factors.Sender;
    r_receiver = group Factors.Receiver;
    r_network = group Factors.Network;
    major = f.Factors.major;
    factors = f.Factors.ratios;
    dominant = f.Factors.dominant;
    timer = p.Analyzer.timer;
    consec8 =
      ( List.length cl.Detect_loss.episodes,
        cl.Detect_loss.induced_delay );
    consec4 = List.length cl4.Detect_loss.episodes;
    blocked_delay =
      Detect_peer_group.blocked_delay p.Analyzer.peer_group_suspects;
    zero_bug =
      Option.map (fun z -> z.Detect_zero_ack.total) p.Analyzer.zero_ack_bug;
  }

let run_dataset ?(scale = 1.0) dataset =
  let transfers = ref [] in
  let summary =
    Fleet.run ~scale dataset ~f:(fun r ->
        transfers := analyze_record r :: !transfers)
  in
  { dataset; summary; transfers = List.rev !transfers }

let cache : (Fleet.dataset, dataset_run) Hashtbl.t = Hashtbl.create 3
let scale_ref = ref 1.0

let get dataset =
  match Hashtbl.find_opt cache dataset with
  | Some run -> run
  | None ->
      Printf.printf "[bench] synthesizing %s (scale %.2f)...\n%!"
        (Fleet.name dataset) !scale_ref;
      let t0 = Unix.gettimeofday () in
      let run = run_dataset ~scale:!scale_ref dataset in
      Printf.printf "[bench] %s: %d transfers in %.1fs\n%!"
        (Fleet.name dataset) run.summary.Fleet.transfers
        (Unix.gettimeofday () -. t0);
      Hashtbl.add cache dataset run;
      run

let all () = List.map get Fleet.all
