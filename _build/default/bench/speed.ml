(* Bechamel microbenchmarks: one Test.make per pipeline stage, measuring
   the cost of the pieces that dominate whole-trace analysis (Table VI's
   performance discussion). *)

open Bechamel
open Toolkit

let prepared =
  lazy
    (let result =
       Tdat_bgpsim.Scenario.run ~seed:4242
         [
           Tdat_bgpsim.Scenario.router ~table_prefixes:12_000
             ~timer_interval:100_000 ~quota:40 1;
         ]
     in
     let o = List.hd result.Tdat_bgpsim.Scenario.outcomes in
     let profile =
       Tdat.Conn_profile.of_trace o.Tdat_bgpsim.Scenario.trace
         ~flow:o.Tdat_bgpsim.Scenario.flow
     in
     let shifted, _ = Tdat.Ack_shift.shift profile in
     let gen = Tdat.Series_gen.generate shifted in
     let pcap = Tdat_pkt.Pcap.encode o.Tdat_bgpsim.Scenario.trace in
     (o, profile, shifted, gen, pcap))

let spans =
  lazy
    (let rng = Tdat_rng.Rng.create 5 in
     let mk () =
       Tdat_timerange.Span_set.of_spans
         (List.init 2_000 (fun _ ->
              let s = Tdat_rng.Rng.int rng 1_000_000 in
              Tdat_timerange.Span.v s (s + 1 + Tdat_rng.Rng.int rng 500)))
     in
     (mk (), mk ()))

let tests =
  [
    Test.make ~name:"span_set.union (2x2000 spans)" (Staged.stage (fun () ->
        let a, b = Lazy.force spans in
        ignore (Tdat_timerange.Span_set.union a b)));
    Test.make ~name:"span_set.inter (2x2000 spans)" (Staged.stage (fun () ->
        let a, b = Lazy.force spans in
        ignore (Tdat_timerange.Span_set.inter a b)));
    Test.make ~name:"conn_profile (labeling)" (Staged.stage (fun () ->
        let o, _, _, _, _ = Lazy.force prepared in
        ignore
          (Tdat.Conn_profile.of_trace o.Tdat_bgpsim.Scenario.trace
             ~flow:o.Tdat_bgpsim.Scenario.flow)));
    Test.make ~name:"ack_shift" (Staged.stage (fun () ->
        let _, profile, _, _, _ = Lazy.force prepared in
        ignore (Tdat.Ack_shift.shift profile)));
    Test.make ~name:"series_gen (34 series)" (Staged.stage (fun () ->
        let _, _, shifted, _, _ = Lazy.force prepared in
        ignore (Tdat.Series_gen.generate shifted)));
    Test.make ~name:"factors" (Staged.stage (fun () ->
        let _, _, _, gen, _ = Lazy.force prepared in
        ignore (Tdat.Factors.compute gen)));
    Test.make ~name:"detectors" (Staged.stage (fun () ->
        let _, _, _, gen, _ = Lazy.force prepared in
        ignore (Tdat.Detect_timer.detect gen);
        ignore (Tdat.Detect_loss.detect gen);
        ignore (Tdat.Detect_peer_group.suspects gen);
        ignore (Tdat.Detect_zero_ack.detect gen)));
    Test.make ~name:"full analyzer pipeline" (Staged.stage (fun () ->
        let o, _, _, _, _ = Lazy.force prepared in
        ignore
          (Tdat.Analyzer.analyze o.Tdat_bgpsim.Scenario.trace
             ~flow:o.Tdat_bgpsim.Scenario.flow
             ~mrt:o.Tdat_bgpsim.Scenario.mrt)));
    Test.make ~name:"pcap2bgp (reassemble + extract)" (Staged.stage (fun () ->
        let o, _, _, _, _ = Lazy.force prepared in
        ignore
          (Tdat_bgp.Msg_reader.extract_from_trace o.Tdat_bgpsim.Scenario.trace
             ~flow:o.Tdat_bgpsim.Scenario.flow)));
    Test.make ~name:"pcap decode" (Staged.stage (fun () ->
        let _, _, _, _, pcap = Lazy.force prepared in
        ignore (Tdat_pkt.Pcap.decode pcap)));
  ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw =
    List.map (fun test -> Benchmark.all cfg instances test) tests
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]
  in
  Printf.printf "\n%-36s %16s\n" "stage" "time/run";
  List.iter2
    (fun test raw ->
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun _ v ->
          match Analyze.OLS.estimates v with
          | Some [ est ] ->
              Printf.printf "%-36s %13.3f us\n" (Test.name test)
                (est /. 1000.)
          | _ -> ())
        results)
    tests raw
