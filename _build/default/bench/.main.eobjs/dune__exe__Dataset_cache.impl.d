bench/dataset_cache.ml: Analyzer Detect_loss Detect_peer_group Detect_timer Detect_zero_ack Factors Hashtbl List Option Printf Tdat Tdat_bgpsim Tdat_pkt Tdat_timerange Transfer_id Unix
