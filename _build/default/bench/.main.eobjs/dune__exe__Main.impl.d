bench/main.ml: Ablations Array Dataset_cache Experiments List Printf Speed Sys Unix
