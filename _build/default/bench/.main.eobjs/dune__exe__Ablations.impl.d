bench/ablations.ml: Ack_shift Analyzer Conn_profile Dataset_cache Factors List Printf String Tdat Tdat_bgpsim Tdat_stats Tdat_tcpsim Tdat_timerange
