bench/speed.ml: Analyze Bechamel Benchmark Hashtbl Instance Lazy List Measure Printf Staged Tdat Tdat_bgp Tdat_bgpsim Tdat_pkt Tdat_rng Tdat_timerange Test Time Toolkit
