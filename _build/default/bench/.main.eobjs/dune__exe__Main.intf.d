bench/main.mli:
