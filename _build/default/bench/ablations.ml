(* Ablations of the design choices the paper calls out:

   - the 30% majority threshold ("We test the threshold between 0.3 to
     0.5, and it does not qualitatively affect the relative importance
     among delay factors", Section IV-A);
   - the ACK-flight shift (Section III-B1) — what receiver-side analysis
     misattributes when the sniffer location is not accommodated;
   - the d2-per-flight estimate vs the handshake baseline alone. *)

open Tdat
module Fleet = Tdat_bgpsim.Fleet
module Scenario = Tdat_bgpsim.Scenario
module C = Dataset_cache

let header title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

(* --- majority-threshold sensitivity ------------------------------------ *)

let ablation_threshold () =
  header "Ablation: majority threshold (paper: robust between 0.3 and 0.5)";
  let run = C.get Fleet.Isp_quagga in
  Printf.printf "%10s %14s %16s %14s\n" "threshold" "sender major"
    "receiver major" "network major";
  List.iter
    (fun thr ->
      let majors g =
        List.length
          (List.filter
             (fun t ->
               let r =
                 match g with
                 | Factors.Sender -> t.C.r_sender
                 | Factors.Receiver -> t.C.r_receiver
                 | Factors.Network -> t.C.r_network
               in
               r > thr)
             run.C.transfers)
      in
      Printf.printf "%10.2f %14d %16d %14d\n" thr (majors Factors.Sender)
        (majors Factors.Receiver) (majors Factors.Network))
    [ 0.3; 0.35; 0.4; 0.45; 0.5 ];
  Printf.printf
    "(the ordering sender > receiver > network must hold at every \
     threshold)\n"

(* --- ACK shifting on/off ------------------------------------------------ *)

let analyze_with ~skip_shift (o : Scenario.outcome) =
  Analyzer.analyze ~skip_shift o.Scenario.trace ~flow:o.Scenario.flow
    ~mrt:o.Scenario.mrt

let ablation_ack_shift () =
  header "Ablation: ACK-flight shifting (sniffer-location accommodation)";
  Printf.printf
    "A long-RTT, window-limited transfer analyzed with and without the\n\
     Section III-B1 shift.  Without it, ACKs appear ~one upstream RTT\n\
     before the data they release, and sender silences get blamed on the\n\
     application:\n\n";
  let result =
    Scenario.run ~seed:2024
      ~collector_tcp:
        { Tdat_tcpsim.Tcp_types.default with max_adv_window = 16_384 }
      [
        Scenario.router ~table_prefixes:10_000
          ~upstream:(Tdat_tcpsim.Connection.path ~delay:40_000 ())
          1;
      ]
  in
  let o = List.hd result.Scenario.outcomes in
  Printf.printf "%-26s %12s %12s\n" "factor" "shifted" "unshifted";
  let shifted = analyze_with ~skip_shift:false o in
  let unshifted = analyze_with ~skip_shift:true o in
  List.iter
    (fun f ->
      let r (a : Analyzer.t) = List.assoc f a.Analyzer.factors.Factors.ratios in
      Printf.printf "%-26s %12.3f %12.3f\n" (Factors.factor_name f) (r shifted)
        (r unshifted))
    [
      Factors.Bgp_sender_app; Factors.Tcp_cwnd; Factors.Tcp_adv_window;
      Factors.Bgp_receiver_app;
    ]

(* --- d2 estimation source ----------------------------------------------- *)

let ablation_d2 () =
  header "Ablation: per-flight d2 estimates vs handshake baseline";
  let result =
    Scenario.run ~seed:2025
      ~collector_tcp:
        { Tdat_tcpsim.Tcp_types.default with max_adv_window = 16_384 }
      [
        Scenario.router ~table_prefixes:10_000
          ~upstream:(Tdat_tcpsim.Connection.path ~delay:40_000 ())
          1;
      ]
  in
  let o = List.hd result.Scenario.outcomes in
  let profile = Conn_profile.of_trace o.Scenario.trace ~flow:o.Scenario.flow in
  let _, infos = Ack_shift.shift profile in
  let with_est, baseline_only =
    List.partition (fun s -> s.Ack_shift.estimates > 0) infos
  in
  let shifts l =
    List.map
      (fun s -> Tdat_timerange.Time_us.to_ms s.Ack_shift.applied)
      l
  in
  Printf.printf "flights with a window-edge d2 estimate: %d\n"
    (List.length with_est);
  (match shifts with_est with
  | [] -> ()
  | xs ->
      Printf.printf "  their applied shifts: median %.1f ms\n"
        (Tdat_stats.Descriptive.median xs));
  Printf.printf "flights falling back to the handshake baseline: %d\n"
    (List.length baseline_only);
  (match shifts baseline_only with
  | [] -> ()
  | xs ->
      Printf.printf "  baseline shift: %.1f ms (true upstream RTT 80.1 ms)\n"
        (Tdat_stats.Descriptive.median xs));
  Printf.printf
    "(estimates exist only while the window limits the sender — the\n\
     paper's Section III-B1 caveat; the baseline covers everything else)\n"

let registry =
  [
    ("ablation_threshold", ablation_threshold);
    ("ablation_ack_shift", ablation_ack_shift);
    ("ablation_d2", ablation_d2);
  ]
