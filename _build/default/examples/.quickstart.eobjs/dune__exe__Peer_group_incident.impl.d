examples/peer_group_incident.ml: List Printf Tdat Tdat_bgpsim Tdat_timerange
