examples/diagnose_timer_gaps.mli:
