examples/incast_collector.mli:
