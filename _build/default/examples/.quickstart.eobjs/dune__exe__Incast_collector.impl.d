examples/incast_collector.ml: List Printf Tdat Tdat_bgpsim Tdat_stats Tdat_tcpsim
