examples/quickstart.mli:
