examples/generic_app.ml: Printf String Tdat Tdat_netsim Tdat_pkt Tdat_rng Tdat_tcpsim
