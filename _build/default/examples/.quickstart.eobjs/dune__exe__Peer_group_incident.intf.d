examples/peer_group_incident.mli:
