examples/generic_app.mli:
