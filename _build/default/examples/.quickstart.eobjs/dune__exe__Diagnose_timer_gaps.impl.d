examples/diagnose_timer_gaps.ml: List Printf Tdat Tdat_bgpsim Tdat_stats Tdat_timerange
