examples/quickstart.ml: List Printf Tdat Tdat_bgpsim
