(* Diagnosing timer-driven senders (Sections II-B1 and IV-B).

   The same router transfers the same table with different per-tick
   quotas: a generous quota hides the 200 ms implementation timer, a
   small one leaves pronounced gaps.  T-DAT's knee detector flags the
   pronounced cases and recovers the timer value from the gap-length
   distribution (Fig. 17).

     dune exec examples/diagnose_timer_gaps.exe *)

let transfer ~quota ~seed =
  let router =
    Tdat_bgpsim.Scenario.router ~table_prefixes:5000 ~timer_interval:200_000
      ~quota 1
  in
  let result = Tdat_bgpsim.Scenario.run ~seed [ router ] in
  let o = List.hd result.Tdat_bgpsim.Scenario.outcomes in
  Tdat.Analyzer.analyze o.Tdat_bgpsim.Scenario.trace
    ~flow:o.Tdat_bgpsim.Scenario.flow ~mrt:o.Tdat_bgpsim.Scenario.mrt

let () =
  Printf.printf "%8s %12s %14s %18s\n" "quota" "duration" "timer found"
    "induced delay";
  List.iteri
    (fun i quota ->
      let a = transfer ~quota ~seed:(100 + i) in
      let duration =
        match a.Tdat.Analyzer.transfer with
        | Some tr ->
            Tdat_timerange.Time_us.to_s (Tdat.Transfer_id.duration tr)
        | None -> 0.
      in
      match a.Tdat.Analyzer.problems.Tdat.Analyzer.timer with
      | Some t ->
          Printf.printf "%8d %10.1f s %11.0f ms %15.1f s\n" quota duration
            (Tdat_timerange.Time_us.to_ms t.Tdat.Detect_timer.timer)
            (Tdat_timerange.Time_us.to_s t.Tdat.Detect_timer.induced_delay)
      | None -> Printf.printf "%8d %10.1f s %14s %18s\n" quota duration "-" "-")
    [ 4; 8; 16; 64; 256 ];
  (* The Fig. 17 view for the most pronounced case: the sorted gap curve
     with its knee at the timer value. *)
  let a = transfer ~quota:8 ~seed:101 in
  let gaps = Tdat.Detect_timer.gap_distribution a.Tdat.Analyzer.series in
  Printf.printf "\nsorted send-idle gaps of the quota-8 transfer (Fig. 17):\n";
  print_string
    (Tdat_stats.Ascii_plot.curve ~x_label:"gap rank" ~y_label:"gap (s)"
       (List.mapi (fun i g -> (float_of_int i, g)) gaps))
