(* T-DAT beyond BGP (the paper's Section VII: "as the tool itself is BGP
   agnostic, we would also like to explore its potential usage for other
   delay sensitive applications").

   Here the monitored application is not a BGP speaker at all but a
   bursty request/response service: the "server" writes a response burst
   whenever its application layer finishes computing, with think times
   between bursts.  The same pipeline — minus the BGP-level transfer
   identification, which simply finds nothing — attributes the delay.

     dune exec examples/generic_app.exe *)

module Engine = Tdat_netsim.Engine
module Connection = Tdat_tcpsim.Connection
module Sender = Tdat_tcpsim.Sender
module Receiver = Tdat_tcpsim.Receiver

let server_ep = Tdat_pkt.Endpoint.of_quad 192 0 2 1 443
let client_ep = Tdat_pkt.Endpoint.of_quad 198 51 100 7 55000

let () =
  let engine = Engine.create () in
  let rng = Tdat_rng.Rng.create 7 in
  let site =
    Connection.Site.create ~engine ~local:(Connection.path ~delay:100 ()) ()
  in
  let conn =
    Connection.create ~engine ~sender_ep:server_ep ~receiver_ep:client_ep
      ~upstream:(Connection.path ~delay:12_000 ())
      ~site ()
  in
  (* The client consumes instantly. *)
  let rcv = Connection.receiver conn in
  Receiver.set_on_data rcv (fun () -> Receiver.consume rcv (Receiver.available rcv));
  (* The server: 30 response bursts of 4-40 KB separated by exponential
     think times averaging 150 ms. *)
  let sender = Connection.sender conn in
  let rec serve n =
    if n > 0 then begin
      let size = Tdat_rng.Rng.int_in rng 4_000 40_000 in
      Sender.write sender (String.make size 'r');
      let think =
        int_of_float (Tdat_rng.Rng.exponential rng ~mean:150_000.)
      in
      ignore (Engine.schedule_after engine (max 1_000 think) (fun () -> serve (n - 1)))
    end
  in
  ignore (Engine.schedule_after engine 5_000 (fun () -> serve 30));
  Connection.start conn;
  Engine.run ~until:60_000_000 engine;

  (* Analyze the captured trace exactly as for BGP. *)
  let trace = Connection.Site.trace site in
  let flow = Tdat_pkt.Flow.v ~sender:server_ep ~receiver:client_ep in
  let a = Tdat.Analyzer.analyze trace ~flow in
  print_endline (Tdat.Report.to_string a);
  Printf.printf
    "\n(no BGP table transfer exists on this connection — the analysis \
     window\nfalls back to the whole connection, and the think times \
     surface as the\napplication-limited factor)\n"
