(* Quickstart: simulate one monitored BGP table transfer, run the T-DAT
   pipeline on the captured trace, and read the verdict.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A router with a 4000-prefix table, paced by a 200 ms timer that
     releases only 8 updates per tick — the classic slow-transfer setup
     of the paper's Section II-B1. *)
  let router =
    Tdat_bgpsim.Scenario.router ~table_prefixes:4000 ~timer_interval:200_000
      ~quota:8 1
  in

  (* 2. Simulate the transfer toward a Quagga collector.  The result
     carries exactly what the paper's datasets contain: the sniffer's
     packet trace and the collector's MRT archive. *)
  let result = Tdat_bgpsim.Scenario.run ~seed:7 [ router ] in
  let outcome = List.hd result.Tdat_bgpsim.Scenario.outcomes in

  (* 3. Analyze: profile the connection, shift the ACKs, locate the table
     transfer (TCP start + MCT end), generate the 34 event series, and
     attribute the delay. *)
  let analysis =
    Tdat.Analyzer.analyze outcome.Tdat_bgpsim.Scenario.trace
      ~flow:outcome.Tdat_bgpsim.Scenario.flow
      ~mrt:outcome.Tdat_bgpsim.Scenario.mrt
  in

  (* 4. The report: factor ratios and detected problems. *)
  print_endline (Tdat.Report.to_string analysis);

  (* 5. Drill down programmatically: how much of the transfer was the
     sending BGP process idle? *)
  let ratio =
    Tdat.Series_gen.ratio analysis.Tdat.Analyzer.series
      Tdat.Series_defs.Send_app_limited
  in
  Printf.printf "sender application idle for %.0f%% of the transfer\n"
    (100. *. ratio);

  (* 6. And visually (the Fig. 11 square waves). *)
  print_string (Tdat.Report.series_timeline analysis.Tdat.Analyzer.series)
