(* Concurrent table transfers overwhelm the collector (Fig. 15 / the
   TCP-incast discussion of Section II-B2).

   A collector restart makes N routers re-open sessions at once.  All
   their transfers share one BGP process and one interface: with few
   peers the TCP advertised window is the visible brake; as N grows the
   shared BGP process becomes the bottleneck and T-DAT's receiver-app
   factor takes over.

     dune exec examples/incast_collector.exe *)

module Scenario = Tdat_bgpsim.Scenario

let run_storm n seed =
  let routers =
    List.init n (fun i ->
        Scenario.router ~table_prefixes:6000
          ~upstream:(Tdat_tcpsim.Connection.path ~delay:15_000 ())
          ~start_at:(10_000 + (i * 3_000))
          (i + 1))
  in
  let result =
    Scenario.run ~seed ~collector_proc_time:250
      ~collector_tcp:
        { Tdat_tcpsim.Tcp_types.default with max_adv_window = 16_384 }
      ~collector_local:
        (Tdat_tcpsim.Connection.path ~delay:50 ~bandwidth_bps:200_000_000
           ~buffer_pkts:40 ())
      routers
  in
  let ratios =
    List.map
      (fun (o : Scenario.outcome) ->
        let a =
          Tdat.Analyzer.analyze o.Scenario.trace ~flow:o.Scenario.flow
            ~mrt:o.Scenario.mrt
        in
        let r = a.Tdat.Analyzer.factors.Tdat.Factors.ratios in
        ( List.assoc Tdat.Factors.Bgp_receiver_app r,
          List.assoc Tdat.Factors.Tcp_adv_window r,
          List.assoc Tdat.Factors.Recv_local_loss r ))
      result.Scenario.outcomes
  in
  let mean f = Tdat_stats.Descriptive.mean (List.map f ratios) in
  ( mean (fun (a, _, _) -> a),
    mean (fun (_, b, _) -> b),
    mean (fun (_, _, c) -> c),
    result.Scenario.local_drops )

let () =
  Printf.printf "%12s %14s %14s %14s %12s\n" "concurrent" "BGP recv app"
    "TCP adv win" "local loss" "iface drops";
  List.iteri
    (fun i n ->
      let bgp, tcp, loss, drops = run_storm n (500 + i) in
      Printf.printf "%12d %14.3f %14.3f %14.3f %12d\n" n bgp tcp loss drops)
    [ 1; 2; 4; 8; 16; 24 ]
