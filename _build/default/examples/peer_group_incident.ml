(* Reconstructing the peer-group blocking incident of Fig. 9.

   One operational router peers with two collectors in a single
   peer group.  The vendor collector dies mid-transfer; the router keeps
   retransmitting to it, and — because the replicated update queue only
   advances when every member has acknowledged — the healthy quagga
   session freezes too, until the hold timer removes the dead member
   ~180 s later.

   T-DAT finds the blocked period on the healthy session (a long idle
   gap carrying only keepalives) and confirms it against the failed
   session's retransmission period:

       Quagga.SendAppLimited  ∩  Vendor.Loss

     dune exec examples/peer_group_incident.exe *)

module Scenario = Tdat_bgpsim.Scenario

let () =
  let router =
    Scenario.router ~table_prefixes:4000 ~timer_interval:200_000 ~quota:5
      ~group_window:32 1
  in
  let incident =
    Scenario.run_peer_group ~seed:42 ~vendor_fail_at:1_500_000
      ~deadline:1_500_000_000 router
  in
  Printf.printf "vendor collector failed at t1 = 1.5 s\n";
  (match incident.Scenario.vendor_removed_at with
  | Some t ->
      Printf.printf "dead member removed at t2 = %.1f s (hold timer)\n"
        (Tdat_timerange.Time_us.to_s t)
  | None -> print_endline "dead member never removed?!");

  let quagga = incident.Scenario.quagga_outcome in
  let vendor = incident.Scenario.vendor_outcome in
  let analyze (o : Scenario.outcome) =
    Tdat.Analyzer.analyze o.Scenario.trace ~flow:o.Scenario.flow
      ~mrt:o.Scenario.mrt
  in
  let aq = analyze quagga and av = analyze vendor in

  (* Step 1: the healthy member shows suspicious keepalive-only idleness. *)
  let suspects =
    aq.Tdat.Analyzer.problems.Tdat.Analyzer.peer_group_suspects
  in
  Printf.printf "\nsuspect blocked periods on the quagga session: %d\n"
    (List.length suspects);
  List.iter
    (fun (s : Tdat.Detect_peer_group.suspect) ->
      Printf.printf "  [%.1f .. %.1f] s with %d keepalive(s)\n"
        (Tdat_timerange.Time_us.to_s
           (Tdat_timerange.Span.start s.Tdat.Detect_peer_group.span))
        (Tdat_timerange.Time_us.to_s
           (Tdat_timerange.Span.stop s.Tdat.Detect_peer_group.span))
        s.Tdat.Detect_peer_group.keepalives)
    suspects;

  (* Step 2: cross-connection confirmation against the failed member. *)
  let confirmed =
    Tdat.Detect_peer_group.confirm aq.Tdat.Analyzer.series
      ~other:av.Tdat.Analyzer.series
  in
  Printf.printf
    "confirmed against the vendor session's retransmissions: %d period(s), \
     %.1f s blocked\n"
    (List.length confirmed)
    (Tdat_timerange.Time_us.to_s
       (Tdat.Detect_peer_group.blocked_delay confirmed))
