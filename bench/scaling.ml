(* Fleet-scaling benchmark: the paper's workload is ~480 GB of traces
   covering hundreds of sessions, so whole-fleet throughput is the number
   that matters.  This harness synthesizes a fleet of independent
   monitored sessions merged into one capture, then measures the two
   fleet-path optimizations:

     - single-pass trace partitioning (Trace.partition_connections)
       against the legacy per-connection rescan it replaced
       (O(connections x packets));
     - Analyzer.analyze_all at jobs in {1,2,4,8} on the Domain pool,
       with the byte-identical-output check across jobs values.

   Results are emitted as machine-readable BENCH_SPEED.json so CI and
   later sessions can compare hardware and regressions.  [scaling_smoke]
   is a seconds-scale variant wired into `dune build @bench-smoke` (a
   `dune runtest` dependency), so the executable cannot rot. *)

module Scenario = Tdat_bgpsim.Scenario
module Trace = Tdat_pkt.Trace

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let min_time_of ~repeat f =
  let best = ref infinity in
  for _ = 1 to repeat do
    let _, dt = time f in
    if dt < !best then best := dt
  done;
  !best

let median a =
  let a = Array.copy a in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 0 then nan
  else if n land 1 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

(* One independent session per router id, with a deterministic mix of
   sender behaviours so per-connection analysis cost is uneven — the
   realistic load-balancing case for the pool. *)
let fleet_trace ~sessions ~prefixes ~seed =
  let session id =
    let timer_interval =
      match id mod 3 with 0 -> None | 1 -> Some 200_000 | _ -> Some 100_000
    in
    let quota = match id mod 3 with 0 -> 8 | 1 -> 6 | _ -> 12 in
    let upstream =
      if id mod 4 = 0 then
        Tdat_tcpsim.Connection.path ~delay:2_000
          ~data_loss:
            (Tdat_netsim.Loss.bernoulli (Tdat_rng.Rng.create (seed + id)) 0.01)
          ()
      else Tdat_tcpsim.Connection.path ~delay:2_000 ()
    in
    let router =
      Scenario.router ~table_prefixes:prefixes ?timer_interval ~quota
        ~upstream id
    in
    let result = Scenario.run ~seed:(seed + id) [ router ] in
    List.hd result.Scenario.outcomes
  in
  let outcomes = List.init sessions (fun i -> session (i + 1)) in
  Trace.of_segments
    (List.concat_map (fun o -> Trace.segments o.Scenario.trace) outcomes)

(* The fleet preparation the partition replaced: enumerate connections,
   then rescan the whole trace once per connection (orientation included,
   as the old analyze_all did). *)
let legacy_rescan trace =
  Trace.connections trace
  |> List.map (fun key ->
         let flow = Trace.infer_sender trace key in
         ( key,
           Trace.split_connection trace ~sender:flow.Tdat_pkt.Flow.sender
             ~receiver:flow.Tdat_pkt.Flow.receiver ))

let report_digest results =
  List.map (fun (_, a) -> Tdat.Report.to_string a) results

(* Minor/major words allocated by one run of [f], after a warm-up run so
   one-time costs (scratch arena growth, table resizes) are excluded.
   Measured at jobs=1 — no worker domains — so the calling domain's GC
   counters see every allocation. *)
let words_of f =
  ignore (f ());
  let s0 = Gc.quick_stat () in
  ignore (f ());
  let s1 = Gc.quick_stat () in
  ( s1.Gc.minor_words -. s0.Gc.minor_words,
    s1.Gc.major_words -. s0.Gc.major_words )

(* Per-stage allocation profile of the analyze path over the fleet:
   whole-pipeline first, then the per-connection stages on the fleet's
   first connection.  These are the numbers the allocation-light
   refactor moves and @perf-gate protects. *)
let alloc_stages trace =
  let packets = Trace.length trace in
  let fpackets = float_of_int packets in
  let whole =
    words_of (fun () -> Tdat.Analyzer.analyze_all ~audit:true ~jobs:1 trace)
  in
  let parts = Trace.partition_connections trace in
  let partition = words_of (fun () -> Trace.partition_connections trace) in
  let per_conn =
    match parts with
    | [] -> []
    | (key, sub) :: _ ->
        let flow = Trace.infer_sender sub key in
        let profile = Tdat.Conn_profile.of_trace sub ~flow in
        [
          ( "transfer_id",
            words_of (fun () -> Tdat.Transfer_id.identify sub ~flow) );
          ( "conn_profile",
            words_of (fun () -> Tdat.Conn_profile.of_trace sub ~flow) );
          ( "series_gen",
            words_of (fun () -> Tdat.Series_gen.generate profile) );
        ]
  in
  let pcap = Tdat_pkt.Pcap.encode trace in
  let decode = words_of (fun () -> Tdat_pkt.Pcap.decode_result pcap) in
  let rows =
    (("analyze_all+audit", whole) :: ("partition", partition) :: per_conn)
    @ [ ("pcap_decode", decode) ]
  in
  List.iter
    (fun (stage, (minor, major)) ->
      Printf.printf
        "alloc %-14s minor %12.0f (%6.1f/pkt)  major %12.0f\n%!" stage minor
        (minor /. fpackets) major)
    rows;
  (packets, rows)

let run_config ~label ~out ~sessions ~prefixes ~jobs_list () =
  Printf.printf "\n=== %s: %d sessions x %d prefixes ===\n%!" label sessions
    prefixes;
  let trace, gen_s = time (fun () -> fleet_trace ~sessions ~prefixes ~seed:7) in
  let packets = Trace.length trace in
  let connections = List.length (Trace.connections trace) in
  Printf.printf "fleet ready: %d connections, %d packets (%.2f s to simulate)\n%!"
    connections packets gen_s;
  let partition_s =
    min_time_of ~repeat:3 (fun () -> ignore (Trace.partition_connections trace))
  in
  let rescan_s = min_time_of ~repeat:3 (fun () -> ignore (legacy_rescan trace)) in
  Printf.printf
    "partition (single pass) %.4f s | legacy rescan %.4f s | %.1fx\n%!"
    partition_s rescan_s (rescan_s /. partition_s);
  (* Warm the allocator and code paths once so the first measured
     configuration does not pay the heap-growth cost alone. *)
  ignore (Tdat.Analyzer.analyze_all ~audit:true ~jobs:1 trace);
  let _, alloc_rows = alloc_stages trace in
  let cores = Domain.recommended_domain_count () in
  let measured =
    List.map
      (fun jobs ->
        let results, wall1 =
          time (fun () -> Tdat.Analyzer.analyze_all ~audit:true ~jobs trace)
        in
        let _, wall2 =
          time (fun () -> Tdat.Analyzer.analyze_all ~audit:true ~jobs trace)
        in
        let wall_s = min wall1 wall2 in
        Printf.printf "analyze_all jobs=%d: %.3f s (best of 2)%s\n%!" jobs
          wall_s
          (if jobs > cores then " [oversubscribed]" else "");
        (jobs, wall_s, report_digest results))
      jobs_list
  in
  let base_wall =
    match measured with (_, w, _) :: _ -> w | [] -> nan
  in
  let base_digest =
    match measured with (_, _, d) :: _ -> d | [] -> []
  in
  let deterministic =
    List.for_all (fun (_, _, d) -> List.equal String.equal d base_digest)
      measured
  in
  Printf.printf "deterministic across jobs: %b\n%!" deterministic;
  (* Instrumented pass: the same workload with metrics collection on.
     The pool's queue-wait and execute histograms decompose each
     configuration's wall time into synchronization overhead versus
     compute — the split that explains why jobs>1 loses on a box whose
     runtime recommends 1 core — and the jobs=1 delta against the
     uninstrumented baseline is the cost of the instrumentation itself
     (near-zero is the contract; BENCH_SPEED.json records the measured
     percentage). *)
  let reg = Tdat_obs.Metrics.default in
  let hsum name =
    match Tdat_obs.Metrics.find_histogram reg name with
    | Some h -> Tdat_obs.Metrics.Histogram.sum h
    | None -> 0.
  in
  let cval name =
    match Tdat_obs.Metrics.find_counter reg name with
    | Some c -> Tdat_obs.Metrics.Counter.value c
    | None -> 0
  in
  let instrumented =
    List.map
      (fun jobs ->
        let run () =
          Tdat_obs.Metrics.reset reg;
          Tdat_obs.Metrics.set_enabled reg true;
          let _, wall_s =
            time (fun () -> Tdat.Analyzer.analyze_all ~audit:true ~jobs trace)
          in
          Tdat_obs.Metrics.set_enabled reg false;
          wall_s
        in
        let wall1 = run () in
        let wall2 = run () in
        let wall_s = min wall1 wall2 in
        let queue_wait = hsum "pool.chunk_queue_wait_us" in
        let execute = hsum "pool.chunk_execute_us" in
        let completed = cval "pool.jobs_completed" in
        Printf.printf
          "instrumented jobs=%d: %.3f s | pool sync %.0f us vs compute %.0f \
           us (%d jobs)\n\
           %!"
          jobs wall_s queue_wait execute completed;
        (jobs, wall_s, queue_wait, execute, completed))
      jobs_list
  in
  (* Instrumentation overhead, measured honestly: alternate baseline
     and instrumented trials back to back at the first jobs value so
     drift (frequency scaling, page-cache state, GC heap shape) lands
     on both arms equally, then compare medians.  The earlier scheme
     compared runs from different warm-up epochs and could report a
     negative overhead; instrumentation only adds work, so a negative
     raw delta is measurement noise and the headline number clamps at
     zero (the raw median delta is still recorded for diagnostics). *)
  let obs_jobs = match jobs_list with j :: _ -> j | [] -> 1 in
  let obs_trials = 5 in
  let baseline_samples = Array.make obs_trials 0. in
  let instrumented_samples = Array.make obs_trials 0. in
  for i = 0 to obs_trials - 1 do
    let _, base_s =
      time (fun () ->
          Tdat.Analyzer.analyze_all ~audit:true ~jobs:obs_jobs trace)
    in
    Tdat_obs.Metrics.reset reg;
    Tdat_obs.Metrics.set_enabled reg true;
    let _, inst_s =
      time (fun () ->
          Tdat.Analyzer.analyze_all ~audit:true ~jobs:obs_jobs trace)
    in
    Tdat_obs.Metrics.set_enabled reg false;
    baseline_samples.(i) <- base_s;
    instrumented_samples.(i) <- inst_s
  done;
  let base_med = median baseline_samples in
  let inst_med = median instrumented_samples in
  let obs_overhead_raw_pct =
    if base_med > 0. then (inst_med -. base_med) /. base_med *. 100. else nan
  in
  let obs_overhead_pct = Float.max 0. obs_overhead_raw_pct in
  Printf.printf
    "obs overhead at jobs=%d: %.2f%% (raw %+.2f%%, median of %d interleaved \
     trials)\n\
     %!"
    obs_jobs obs_overhead_pct obs_overhead_raw_pct obs_trials;
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"benchmark\": \"fleet-scaling\",\n";
  p "  \"config\": \"%s\",\n" label;
  p "  \"cores_detected\": %d,\n" cores;
  p "  \"sessions\": %d,\n" sessions;
  p "  \"prefixes_per_table\": %d,\n" prefixes;
  p "  \"connections\": %d,\n" connections;
  p "  \"packets\": %d,\n" packets;
  p "  \"stages\": {\n";
  p "    \"partition_single_pass_s\": %.6f,\n" partition_s;
  p "    \"legacy_per_connection_rescan_s\": %.6f,\n" rescan_s;
  p "    \"partition_speedup\": %.3f\n" (rescan_s /. partition_s);
  p "  },\n";
  p "  \"alloc_words\": [\n";
  List.iteri
    (fun i (stage, (minor, major)) ->
      p
        "    { \"stage\": %S, \"minor_words\": %.0f, \
         \"minor_words_per_packet\": %.1f, \"major_words\": %.0f }%s\n"
        stage minor
        (minor /. float_of_int packets)
        major
        (if i = List.length alloc_rows - 1 then "" else ","))
    alloc_rows;
  p "  ],\n";
  p "  \"analyze_all\": [\n";
  (* A speedup-vs-jobs1 claim is only meaningful when the hardware can
     actually run more than one domain; on a 1-core box every jobs>1 row
     is oversubscription overhead, not a scaling result. *)
  List.iteri
    (fun i (jobs, wall_s, _) ->
      p "    { \"jobs\": %d, \"wall_s\": %.6f%s, \"oversubscribed\": %b }%s\n"
        jobs wall_s
        (if cores = 1 && jobs > 1 then ""
         else Printf.sprintf ", \"speedup_vs_jobs1\": %.3f" (base_wall /. wall_s))
        (jobs > cores)
        (if i = List.length measured - 1 then "" else ","))
    measured;
  p "  ],\n";
  p "  \"observability\": {\n";
  p "    \"obs_overhead_pct\": %.3f,\n" obs_overhead_pct;
  p "    \"obs_overhead_raw_pct\": %.3f,\n" obs_overhead_raw_pct;
  p "    \"obs_overhead_trials\": %d,\n" obs_trials;
  p "    \"instrumented\": [\n";
  List.iteri
    (fun i (jobs, wall_s, queue_wait, execute, completed) ->
      p
        "      { \"jobs\": %d, \"wall_s\": %.6f, \
         \"pool_queue_wait_us_sum\": %.1f, \"pool_execute_us_sum\": %.1f, \
         \"pool_jobs_completed\": %d }%s\n"
        jobs wall_s queue_wait execute completed
        (if i = List.length instrumented - 1 then "" else ","))
    instrumented;
  p "    ]\n";
  p "  },\n";
  p "  \"deterministic_across_jobs\": %b\n" deterministic;
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" out

let run_full () =
  run_config ~label:"full" ~out:"BENCH_SPEED.json" ~sessions:12
    ~prefixes:12_000 ~jobs_list:[ 1; 2; 4; 8 ] ()

let run_smoke () =
  run_config ~label:"smoke" ~out:"BENCH_SPEED.smoke.json" ~sessions:3
    ~prefixes:200 ~jobs_list:[ 1; 2 ] ()

let registry = [ ("scaling", run_full); ("scaling_smoke", run_smoke) ]
