(* One reproduction per table and figure of the paper.  Each experiment
   prints the paper's published numbers next to what the synthetic
   datasets + T-DAT measure, so shape comparisons are immediate. *)

open Tdat
module Fleet = Tdat_bgpsim.Fleet
module Scenario = Tdat_bgpsim.Scenario
module Collector = Tdat_bgpsim.Collector
module Connection = Tdat_tcpsim.Connection
module Tcp_types = Tdat_tcpsim.Tcp_types
module Seg = Tdat_pkt.Tcp_segment
module Span = Tdat_timerange.Span
module D = Series_defs
module C = Dataset_cache

let header title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

let sub title = Printf.printf "\n-- %s --\n" title

let pct a b = if b = 0 then 0. else 100. *. float_of_int a /. float_of_int b

(* ---------------------------------------------------------------------- *)
(* Table I: dataset summary                                                *)
(* ---------------------------------------------------------------------- *)

let table1 () =
  header
    "Table I: summary of BGP/TCP datasets and identified table transfers";
  Printf.printf
    "paper   : ISP_A-1 (Vendor, iBGP)  24 rtrs 1023M pkts/218GB  10396 transfers\n";
  Printf.printf
    "          ISP_A-2 (Quagga, iBGP)  27 rtrs 2697M pkts/438GB    436 transfers\n";
  Printf.printf
    "          RV      (Vendor, eBGP)  59 rtrs  176M pkts/ 47GB     94 transfers\n";
  Printf.printf
    "(counts scaled: ISP_A-1 at 1/10 of the paper; tables ~1/50 size)\n\n";
  Printf.printf "%-18s %6s %9s %9s %9s %10s %6s\n" "measured" "rtrs" "pkts"
    "MB" "transfers" "mrt-upd" "tcp";
  List.iter
    (fun (run : C.dataset_run) ->
      let s = run.C.summary in
      Printf.printf "%-18s %6d %9d %9.1f %9d %10d %6s\n"
        (Fleet.name run.C.dataset)
        s.Fleet.routers s.Fleet.packets
        (float_of_int s.Fleet.bytes /. 1e6)
        s.Fleet.transfers s.Fleet.mrt_updates
        (match Fleet.collector_kind run.C.dataset with
        | Collector.Quagga -> "yes"
        | Collector.Vendor -> "yes"))
    (C.all ())

(* ---------------------------------------------------------------------- *)
(* Fig 3: CDF of table transfer duration                                   *)
(* ---------------------------------------------------------------------- *)

let durations run =
  List.filter_map
    (fun t -> if t.C.duration_s > 0. then Some t.C.duration_s else None)
    run.C.transfers

let fig3 () =
  header "Fig 3: CDF of table transfer duration";
  Printf.printf
    "paper: most transfers finish within minutes; ISP_A (Quagga) and RV have\n\
    \       50-pct at ~2.5 min and 80-pct at ~5 min; tails beyond 10 min.\n\
     measured (scaled tables => seconds instead of minutes; shape holds):\n";
  let series =
    List.map
      (fun run ->
        let d = durations run in
        Printf.printf
          "  %-18s n=%4d  p50=%6.1fs  p80=%6.1fs  p95=%6.1fs  max=%6.1fs\n"
          (Fleet.name run.C.dataset) (List.length d)
          (Tdat_stats.Descriptive.percentile 50. d)
          (Tdat_stats.Descriptive.percentile 80. d)
          (Tdat_stats.Descriptive.percentile 95. d)
          (Tdat_stats.Descriptive.percentile 100. d);
        ( Fleet.name run.C.dataset,
          Tdat_stats.Cdf.points
            (Tdat_stats.Cdf.of_samples (List.map (fun s -> min s 60.) d)) ))
      (C.all ())
  in
  print_string
    (Tdat_stats.Ascii_plot.cdf ~x_label:"duration (s, clamped at 60)" series)

(* ---------------------------------------------------------------------- *)
(* Fig 4: stretch of table transfers                                       *)
(* ---------------------------------------------------------------------- *)

let stretches run =
  (* Per router: slowest / fastest among transfers carrying a similar
     amount of data (within 25% of the router's median bytes). *)
  let by_router = Hashtbl.create 32 in
  List.iter
    (fun t ->
      if t.C.duration_s > 0. then
        Hashtbl.replace by_router t.C.meta.Fleet.router_id
          (t
          :: Option.value ~default:[]
               (Hashtbl.find_opt by_router t.C.meta.Fleet.router_id)))
    run.C.transfers;
  Hashtbl.fold
    (fun _ ts acc ->
      let bytes = List.map (fun t -> float_of_int t.C.bytes) ts in
      match bytes with
      | [] -> acc
      | _ ->
          let med = Tdat_stats.Descriptive.median bytes in
          let similar =
            List.filter
              (fun t ->
                let b = float_of_int t.C.bytes in
                b > 0.75 *. med && b < 1.25 *. med)
              ts
          in
          if List.length similar >= 2 then begin
            let ds = List.map (fun t -> t.C.duration_s) similar in
            let lo = List.fold_left min infinity ds in
            let hi = List.fold_left max 0. ds in
            if lo > 0. then (hi /. lo) :: acc else acc
          end
          else acc)
    by_router []

let fig4 () =
  header "Fig 4: stretch of table transfers (slowest/fastest per router)";
  Printf.printf
    "paper: routers send the same table 2-5x slower than their own fastest;\n\
    \       fraction of routers with stretch >= 2: 22%% / 59%% / 100%%\n\
     measured:\n";
  let series =
    List.filter_map
      (fun run ->
        let s = stretches run in
        if s = [] then None
        else begin
          let ge2 =
            List.length (List.filter (fun x -> x >= 2.) s)
          in
          Printf.printf
            "  %-18s routers=%3d  median=%4.1fx  max=%5.1fx  stretch>=2: %.0f%%\n"
            (Fleet.name run.C.dataset) (List.length s)
            (Tdat_stats.Descriptive.median s)
            (List.fold_left max 0. s)
            (pct ge2 (List.length s));
          Some
            ( Fleet.name run.C.dataset,
              Tdat_stats.Cdf.points
                (Tdat_stats.Cdf.of_samples (List.map (fun x -> min x 20.) s))
            )
        end)
      (C.all ())
  in
  print_string
    (Tdat_stats.Ascii_plot.cdf ~x_label:"stretch ratio (clamped at 20)" series)

(* ---------------------------------------------------------------------- *)
(* Table II: transport problems in sampled slow transfers                  *)
(* ---------------------------------------------------------------------- *)

let slow_sample run =
  (* Per router: transfers slower than mean + 3 sd, else the slowest. *)
  let by_router = Hashtbl.create 32 in
  List.iter
    (fun t ->
      if t.C.duration_s > 0. then
        Hashtbl.replace by_router t.C.meta.Fleet.router_id
          (t
          :: Option.value ~default:[]
               (Hashtbl.find_opt by_router t.C.meta.Fleet.router_id)))
    run.C.transfers;
  Hashtbl.fold
    (fun _ ts acc ->
      let ds = List.map (fun t -> t.C.duration_s) ts in
      let threshold = Tdat_stats.Descriptive.slow_threshold ds in
      let slow = List.filter (fun t -> t.C.duration_s > threshold) ts in
      let selected =
        if slow <> [] then slow
        else
          [
            List.fold_left
              (fun best t ->
                if t.C.duration_s > best.C.duration_s then t else best)
              (List.hd ts) ts;
          ]
      in
      selected @ acc)
    by_router []

let table2 () =
  header "Table II: observed transport problems (sampled slow transfers)";
  Printf.printf
    "paper (172 sampled slow transfers across all traces):\n\
    \  gaps in table transfers: 25   consecutive retransmissions: 58\n\
    \  BGP peer-group blocking: 15\n\
     measured:\n";
  let sample = List.concat_map slow_sample (C.all ()) in
  let gaps = List.filter (fun t -> t.C.timer <> None) sample in
  let retx = List.filter (fun t -> t.C.consec4 > 0) sample in
  let blocked = List.filter (fun t -> t.C.blocked_delay > 0) sample in
  Printf.printf
    "  sampled slow transfers: %d\n\
    \  gaps in table transfers: %d   consecutive retransmissions: %d\n\
    \  BGP peer-group blocking: %d\n"
    (List.length sample) (List.length gaps) (List.length retx)
    (List.length blocked)

(* ---------------------------------------------------------------------- *)
(* Fig 5: timer gaps in a table transfer (time-sequence view)              *)
(* ---------------------------------------------------------------------- *)

let fig5 () =
  header "Fig 5: gaps in a table transfer (timer-driven sender)";
  let result =
    Scenario.run ~seed:501
      [ Scenario.router ~table_prefixes:3000 ~timer_interval:200_000 ~quota:8 1 ]
  in
  let o = List.hd result.Scenario.outcomes in
  let data =
    Tdat_pkt.Trace.segments o.Scenario.trace |> List.filter Seg.is_data
  in
  let pts =
    List.map
      (fun (s : Seg.t) ->
        (Tdat_timerange.Time_us.to_s s.Seg.ts, float_of_int (Seg.seq_end s)))
      data
  in
  Printf.printf
    "paper: the sender regularly pauses; gaps much longer than the RTT\n\
     measured: sequence/time plot of one transfer (200 ms timer, quota 8):\n";
  print_string
    (Tdat_stats.Ascii_plot.curve ~x_label:"time (s)" ~y_label:"stream offset"
       pts);
  let a =
    Analyzer.analyze o.Scenario.trace ~flow:o.Scenario.flow ~mrt:o.Scenario.mrt
  in
  match a.Analyzer.problems.Analyzer.timer with
  | Some t ->
      Printf.printf "detected timer: %.0f ms (%d gaps, %.2f s induced)\n"
        (Tdat_timerange.Time_us.to_ms t.Detect_timer.timer)
        t.Detect_timer.gaps
        (Tdat_timerange.Time_us.to_s t.Detect_timer.induced_delay)
  | None -> Printf.printf "detected timer: none (unexpected)\n"

(* ---------------------------------------------------------------------- *)
(* Fig 6 + Table III: consecutive retransmissions and delayed updates      *)
(* ---------------------------------------------------------------------- *)

let fig6_table3 () =
  header "Fig 6 / Table III: consecutive retransmissions delay BGP updates";
  let rng = Tdat_rng.Rng.create 42 in
  let burst t0 len p =
    Tdat_netsim.Loss.bernoulli_during (Tdat_rng.Rng.split rng)
      (Tdat_timerange.Span_set.of_span (Span.v t0 (t0 + len)))
      p
  in
  let loss =
    Tdat_netsim.Loss.combine
      (burst 300_000 250_000 0.75)
      (burst 1_600_000 250_000 0.75)
  in
  let result =
    Scenario.run ~seed:603
      [
        Scenario.router ~table_prefixes:25_000
          ~upstream:(Connection.path ~delay:15_000 ~data_loss:loss ())
          1;
      ]
  in
  let o = List.hd result.Scenario.outcomes in
  let a =
    Analyzer.analyze o.Scenario.trace ~flow:o.Scenario.flow ~mrt:o.Scenario.mrt
  in
  let p = a.Analyzer.profile in
  Printf.printf
    "paper: two episodes of consecutive retransmissions; updates sent at the\n\
    \       same instant arrive 1..13 s late\n\
     measured: retransmission episodes on the wire:\n";
  List.iter
    (fun (e : Conn_profile.loss_episode) ->
      Printf.printf "  episode: %2d pkts over [%6.2f .. %6.2f]s\n"
        e.Conn_profile.packets
        (Tdat_timerange.Time_us.to_s (Span.start e.Conn_profile.span))
        (Tdat_timerange.Time_us.to_s (Span.stop e.Conn_profile.span)))
    (p.Conn_profile.upstream_episodes @ p.Conn_profile.downstream_episodes);
  (* Table III: delays of updates reconstructed from the trace, relative
     to when the sender put them on the wire (batch write time). *)
  sub "Table III-style rows: update arrival delay during the first episode";
  let msgs =
    Tdat_bgp.Msg_reader.extract_from_trace o.Scenario.trace
      ~flow:o.Scenario.flow
  in
  let first_episode =
    match p.Conn_profile.upstream_episodes @ p.Conn_profile.downstream_episodes
    with
    | e :: _ -> e.Conn_profile.span
    | [] -> Span.v 0 1
  in
  let in_episode =
    List.filter_map
      (fun (m : Tdat_bgp.Msg_reader.timed_msg) ->
        match m.Tdat_bgp.Msg_reader.msg with
        | Tdat_bgp.Msg.Update u
          when u.Tdat_bgp.Msg.nlri <> []
               && Span.contains first_episode m.Tdat_bgp.Msg_reader.ts ->
            Some (m.Tdat_bgp.Msg_reader.ts, u)
        | _ -> None)
      msgs
  in
  (* Sample rows evenly across the episode so the delay spread shows. *)
  let n = List.length in_episode in
  let rows = 8 in
  List.iteri
    (fun i (ts, u) ->
      if n <= rows || i mod (max 1 (n / rows)) = 0 then begin
        let delay =
          Tdat_timerange.Time_us.to_s (ts - Span.start first_episode)
        in
        let prefix = List.hd u.Tdat_bgp.Msg.nlri in
        let path =
          List.find_map
            (function Tdat_bgp.Attr.As_path p -> Some p | _ -> None)
            u.Tdat_bgp.Msg.attrs
        in
        Printf.printf "  +%5.2fs  %-18s  path [%s]\n" delay
          (Tdat_bgp.Prefix.to_string prefix)
          (match path with
          | Some p -> Format.asprintf "%a" Tdat_bgp.As_path.pp p
          | None -> "-")
      end)
    in_episode;
  if in_episode = [] then
    Printf.printf "  (no updates completed inside the episode window)\n"

(* ---------------------------------------------------------------------- *)
(* Fig 7 / Fig 8: downstream vs upstream loss signatures                   *)
(* ---------------------------------------------------------------------- *)

let fig7_8 () =
  header "Fig 7 / Fig 8: receiver-local (downstream) vs upstream losses";
  let run_case name ~local_loss ~upstream_loss =
    let rng = Tdat_rng.Rng.create 77 in
    let burst =
      Tdat_timerange.Span_set.of_span (Span.v 200_000 320_000)
    in
    let mk p =
      if p then Tdat_netsim.Loss.bernoulli_during (Tdat_rng.Rng.split rng) burst 0.6
      else Tdat_netsim.Loss.none
    in
    let result =
      Scenario.run ~seed:708
        ~collector_local:
          (Connection.path ~delay:50 ~data_loss:(mk local_loss) ())
        [
          Scenario.router ~table_prefixes:20_000
            ~upstream:
              (Connection.path ~delay:10_000 ~data_loss:(mk upstream_loss) ())
            1;
        ]
    in
    let o = List.hd result.Scenario.outcomes in
    let a =
      Analyzer.analyze o.Scenario.trace ~flow:o.Scenario.flow
        ~mrt:o.Scenario.mrt
    in
    let p = a.Analyzer.profile in
    let count eps =
      List.fold_left
        (fun acc (e : Conn_profile.loss_episode) ->
          acc + e.Conn_profile.packets)
        0 eps
    in
    Printf.printf
      "  %-28s upstream-classified: %2d pkts   downstream-classified: %2d pkts\n"
      name
      (count p.Conn_profile.upstream_episodes)
      (count p.Conn_profile.downstream_episodes)
  in
  Printf.printf
    "paper: losses after the sniffer leave seen-but-unacknowledged packets\n\
    \       (downstream); losses before it leave sequence holes (upstream)\n\
     measured (0.6 drop burst placed on each side of the sniffer):\n";
  run_case "drops on the local link" ~local_loss:true ~upstream_loss:false;
  run_case "drops on the upstream path" ~local_loss:false ~upstream_loss:true

(* ---------------------------------------------------------------------- *)
(* Fig 9: session failure and peer-group blocking                          *)
(* ---------------------------------------------------------------------- *)

let fig9 () =
  header "Fig 9: session failure and peer-group blocking";
  let r =
    Scenario.router ~table_prefixes:4_000 ~timer_interval:200_000 ~quota:5
      ~group_window:32 1
  in
  let pg =
    Scenario.run_peer_group ~seed:909 ~vendor_fail_at:1_000_000
      ~deadline:1_500_000_000 r
  in
  let q = pg.Scenario.quagga_outcome in
  let v = pg.Scenario.vendor_outcome in
  Printf.printf
    "paper: vendor-collector error at t1 blocks the quagga member until the\n\
    \       faulty session times out at t2 = t1 + ~180 s\n\
     measured:\n";
  Printf.printf "  vendor failure injected at t1 = 1.0 s\n";
  (match pg.Scenario.vendor_removed_at with
  | Some t ->
      Printf.printf "  failed member removed at t2 = %.1f s (blocked %.1f s)\n"
        (Tdat_timerange.Time_us.to_s t)
        (Tdat_timerange.Time_us.to_s t -. 1.0)
  | None -> Printf.printf "  failed member never removed (unexpected)\n");
  let aq =
    Analyzer.analyze q.Scenario.trace ~flow:q.Scenario.flow ~mrt:q.Scenario.mrt
  in
  let av = Analyzer.analyze v.Scenario.trace ~flow:v.Scenario.flow in
  let confirmed =
    Detect_peer_group.confirm aq.Analyzer.series ~other:av.Analyzer.series
  in
  Printf.printf "  quagga member: %d confirmed blocking period(s), %.1f s total\n"
    (List.length confirmed)
    (Tdat_timerange.Time_us.to_s (Detect_peer_group.blocked_delay confirmed));
  (* Timeline of both members' update activity. *)
  let activity trace =
    Tdat_pkt.Trace.segments trace
    |> List.filter (fun (s : Seg.t) -> s.Seg.len > 38)
    |> List.map (fun (s : Seg.t) ->
           let t = Tdat_timerange.Time_us.to_s s.Seg.ts in
           (t, t +. 0.5))
  in
  print_string
    (Tdat_stats.Ascii_plot.timeline ~window:(0., 220.)
       [
         ("quagga updates", activity q.Scenario.trace);
         ("vendor updates", activity v.Scenario.trace);
       ])

(* ---------------------------------------------------------------------- *)
(* Fig 11: example trace and derived event series                          *)
(* ---------------------------------------------------------------------- *)

let fig11 () =
  header "Fig 11: example TCP trace and derived event series";
  let rng = Tdat_rng.Rng.create 1111 in
  let loss =
    Tdat_netsim.Loss.bernoulli_during rng
      (Tdat_timerange.Span_set.of_span (Span.v 900_000 1_050_000))
      0.5
  in
  let result =
    Scenario.run ~seed:1111
      [
        Scenario.router ~table_prefixes:12_000 ~timer_interval:100_000
          ~quota:40
          ~upstream:(Connection.path ~delay:8_000 ~data_loss:loss ())
          1;
      ]
  in
  let o = List.hd result.Scenario.outcomes in
  let a =
    Analyzer.analyze o.Scenario.trace ~flow:o.Scenario.flow ~mrt:o.Scenario.mrt
  in
  Printf.printf
    "paper: square-wave series explain the inter-transmission gaps\n\
     measured (one transfer with a mid-stream loss burst):\n";
  print_string (Report.series_timeline a.Analyzer.series)

(* ---------------------------------------------------------------------- *)
(* Fig 12/13: ACK shifting                                                 *)
(* ---------------------------------------------------------------------- *)

let fig13 () =
  header "Fig 12/13: accommodating the sniffer location (ACK-flight shift)";
  let result =
    Scenario.run ~seed:1313
      [
        Scenario.router ~table_prefixes:8_000
          ~upstream:(Connection.path ~delay:40_000 ())
          1;
      ]
  in
  let o = List.hd result.Scenario.outcomes in
  let profile =
    Conn_profile.of_trace o.Scenario.trace ~flow:o.Scenario.flow
  in
  let _, infos = Ack_shift.shift profile in
  Printf.printf
    "paper: shift each ACK flight forward by the smallest d2 estimate in it\n\
     measured: true sniffer->sender->sniffer round trip = ~80 ms\n\n";
  Printf.printf "  %-10s %7s %9s %12s\n" "flight" "acks" "with-d2" "applied";
  List.iteri
    (fun i (s : Ack_shift.flight_shift) ->
      if i < 12 then
        Printf.printf "  %-10d %7d %9d %9.1f ms\n" (i + 1) s.Ack_shift.n_acks
          s.Ack_shift.estimates
          (Tdat_timerange.Time_us.to_ms s.Ack_shift.applied))
    infos;
  let applied =
    List.filter_map
      (fun (s : Ack_shift.flight_shift) ->
        if s.Ack_shift.estimates > 0 then
          Some (Tdat_timerange.Time_us.to_ms s.Ack_shift.applied)
        else None)
      infos
  in
  if applied <> [] then
    Printf.printf "  median applied shift: %.1f ms (ground truth 80.1 ms)\n"
      (Tdat_stats.Descriptive.median applied)

(* ---------------------------------------------------------------------- *)
(* Fig 14: sender/receiver delay-ratio scatter                             *)
(* ---------------------------------------------------------------------- *)

let fig14 () =
  header "Fig 14: sender-side vs receiver-side delay ratios";
  Printf.printf
    "paper: ISP_A (Vendor) clusters at sender ratios 0.4-0.9; ISP_A (Quagga)\n\
    \       hugs the x+y=1 line; RV is more spread out; network ratio ~0\n\
     measured:\n";
  List.iter
    (fun (run : C.dataset_run) ->
      let pts =
        List.map (fun t -> (t.C.r_sender, t.C.r_receiver)) run.C.transfers
      in
      let mean_n =
        Tdat_stats.Descriptive.mean
          (List.map (fun t -> t.C.r_network) run.C.transfers)
      in
      Printf.printf "\n  %s (mean network ratio %.3f):\n"
        (Fleet.name run.C.dataset) mean_n;
      print_string
        (Tdat_stats.Ascii_plot.scatter ~width:56 ~height:14 ~x_max:1.0
           ~y_max:1.0 ~x_label:"sender ratio" ~y_label:"receiver ratio"
           [ ('+', pts) ]))
    (C.all ())

(* ---------------------------------------------------------------------- *)
(* Table IV: distribution of major delay factors                           *)
(* ---------------------------------------------------------------------- *)

let table4 () =
  header "Table IV: major delay factors (threshold 30% of transfer duration)";
  let paper = function
    | Fleet.Isp_vendor ->
        ( 10396,
          [ ("Sender-side limited", 8525); ("Receiver-side limited", 4210);
            ("Network limited", 24); ("Unknown", 20);
            ("  BGP sender app", 5740); ("  TCP congestion window", 2785);
            ("  BGP receiver app", 3391); ("  TCP advertised window", 758);
            ("  Local packet loss (recv)", 61); ("  Bandwidth limited", 1);
            ("  Network packet loss", 23) ] )
    | Fleet.Isp_quagga ->
        ( 436,
          [ ("Sender-side limited", 295); ("Receiver-side limited", 242);
            ("Network limited", 10); ("Unknown", 5);
            ("  BGP sender app", 266); ("  TCP congestion window", 29);
            ("  BGP receiver app", 204); ("  TCP advertised window", 37);
            ("  Local packet loss (recv)", 1); ("  Bandwidth limited", 2);
            ("  Network packet loss", 8) ] )
    | Fleet.Routeviews ->
        ( 94,
          [ ("Sender-side limited", 79); ("Receiver-side limited", 40);
            ("Network limited", 13); ("Unknown", 2);
            ("  BGP sender app", 28); ("  TCP congestion window", 51);
            ("  BGP receiver app", 0); ("  TCP advertised window", 24);
            ("  Local packet loss (recv)", 16); ("  Bandwidth limited", 0);
            ("  Network packet loss", 13) ] )
  in
  List.iter
    (fun (run : C.dataset_run) ->
      let ts = run.C.transfers in
      let n = List.length ts in
      let majors g = List.length (List.filter (fun t -> List.mem g t.C.major) ts) in
      let unknown =
        List.length (List.filter (fun t -> t.C.major = []) ts)
      in
      let factor_major f =
        List.length
          (List.filter (fun t -> List.assoc f t.C.factors > 0.3) ts)
      in
      let total_paper, rows = paper run.C.dataset in
      sub (Fleet.name run.C.dataset);
      Printf.printf "  %-28s %10s %10s\n" ""
        (Printf.sprintf "paper/%d" total_paper)
        (Printf.sprintf "measured/%d" n);
      let measured =
        [
          ("Sender-side limited", majors Factors.Sender);
          ("Receiver-side limited", majors Factors.Receiver);
          ("Network limited", majors Factors.Network);
          ("Unknown", unknown);
          ("  BGP sender app", factor_major Factors.Bgp_sender_app);
          ("  TCP congestion window", factor_major Factors.Tcp_cwnd);
          ("  BGP receiver app", factor_major Factors.Bgp_receiver_app);
          ("  TCP advertised window", factor_major Factors.Tcp_adv_window);
          ("  Local packet loss (recv)", factor_major Factors.Recv_local_loss);
          ("  Bandwidth limited", factor_major Factors.Bandwidth);
          ("  Network packet loss", factor_major Factors.Network_loss);
        ]
      in
      List.iter2
        (fun (name, pv) (_, mv) ->
          Printf.printf "  %-28s %6d (%4.0f%%) %6d (%4.0f%%)\n" name pv
            (pct pv total_paper) mv (pct mv n))
        rows measured)
    (C.all ())

(* ---------------------------------------------------------------------- *)
(* Fig 15: concurrent table transfers vs receiver bottleneck               *)
(* ---------------------------------------------------------------------- *)

let fig15 () =
  header "Fig 15: effect of concurrent table transfers on the receiver";
  Printf.printf
    "paper: below ~10 concurrent transfers the TCP receiver window binds\n\
    \       slightly; beyond that the BGP receiver process becomes the\n\
    \       bottleneck\n\
     measured (ISP_A Quagga dataset, grouped by batch concurrency):\n\n";
  let run = C.get Fleet.Isp_quagga in
  let bins = [ (1, 1); (2, 5); (6, 10); (11, 20); (21, 40) ] in
  Printf.printf "  %-12s %9s %14s %14s\n" "concurrent" "transfers"
    "BGP recv ratio" "TCP recv ratio";
  List.iter
    (fun (lo, hi) ->
      let ts =
        List.filter
          (fun t ->
            t.C.meta.Fleet.concurrent >= lo && t.C.meta.Fleet.concurrent <= hi)
          run.C.transfers
      in
      if ts <> [] then begin
        let mean f = Tdat_stats.Descriptive.mean (List.map f ts) in
        Printf.printf "  %4d..%-6d %9d %14.3f %14.3f\n" lo hi (List.length ts)
          (mean (fun t -> List.assoc Factors.Bgp_receiver_app t.C.factors))
          (mean (fun t -> List.assoc Factors.Tcp_adv_window t.C.factors))
      end)
    bins

(* ---------------------------------------------------------------------- *)
(* Fig 16: transfer duration CDF by dominant delay factor                  *)
(* ---------------------------------------------------------------------- *)

let fig16 () =
  header "Fig 16: table transfer duration by dominant delay factor";
  Printf.printf
    "paper: receiver-window-limited transfers are fastest, then congestion\n\
    \       window; loss-limited and BGP-app-limited transfers are slowest\n\
     measured (all datasets pooled):\n";
  let ts = List.concat_map (fun r -> r.C.transfers) (C.all ()) in
  let classes =
    [
      ("TCP recv window", Factors.equal_factor Factors.Tcp_adv_window);
      ("TCP cong. window", Factors.equal_factor Factors.Tcp_cwnd);
      ( "packet loss",
        fun f ->
          Factors.equal_factor f Factors.Recv_local_loss
          || Factors.equal_factor f Factors.Network_loss
          || Factors.equal_factor f Factors.Send_local_loss );
      ( "BGP app",
        fun f ->
          Factors.equal_factor f Factors.Bgp_sender_app
          || Factors.equal_factor f Factors.Bgp_receiver_app );
    ]
  in
  let series =
    List.filter_map
      (fun (name, pred) ->
        let ds =
          List.filter_map
            (fun t ->
              match t.C.dominant with
              | Some f when pred f && t.C.duration_s > 0. ->
                  Some t.C.duration_s
              | _ -> None)
            ts
        in
        if List.length ds < 3 then None
        else begin
          Printf.printf "  %-18s n=%4d  p50=%6.1fs  p90=%6.1fs\n" name
            (List.length ds)
            (Tdat_stats.Descriptive.percentile 50. ds)
            (Tdat_stats.Descriptive.percentile 90. ds);
          Some
            ( name,
              Tdat_stats.Cdf.points
                (Tdat_stats.Cdf.of_samples (List.map (fun d -> min d 60.) ds))
            )
        end)
      classes
  in
  print_string
    (Tdat_stats.Ascii_plot.cdf ~x_label:"duration (s, clamped at 60)" series)

(* ---------------------------------------------------------------------- *)
(* Fig 17: inferring BGP timers from the gap distribution                  *)
(* ---------------------------------------------------------------------- *)

let fig17 () =
  header "Fig 17: inferring BGP timers from the gap-length distribution";
  (* One pronounced transfer for the example curve. *)
  let result =
    Scenario.run ~seed:1717
      [ Scenario.router ~table_prefixes:6_000 ~timer_interval:200_000 ~quota:10 1 ]
  in
  let o = List.hd result.Scenario.outcomes in
  let a =
    Analyzer.analyze o.Scenario.trace ~flow:o.Scenario.flow ~mrt:o.Scenario.mrt
  in
  let gaps = Detect_timer.gap_distribution a.Analyzer.series in
  Printf.printf
    "paper: a knee in the sorted gap curve marks the timer (200 ms example);\n\
    \       timers found: ISP_A(Vendor) 200/400, ISP_A(Quagga) 100/200,\n\
    \       RV 80/400 ms, with 200 ms the most prevalent overall\n\
     measured example (sorted gap lengths of one transfer):\n";
  print_string
    (Tdat_stats.Ascii_plot.curve ~x_label:"gap rank" ~y_label:"gap (s)"
       (List.mapi (fun i g -> (float_of_int i, g)) gaps));
  (match a.Analyzer.problems.Analyzer.timer with
  | Some t ->
      Printf.printf "  knee-detected timer: %.0f ms\n"
        (Tdat_timerange.Time_us.to_ms t.Detect_timer.timer)
  | None -> Printf.printf "  no timer detected (unexpected)\n");
  (* Timer values recovered per dataset. *)
  sub "timers inferred across the datasets (count by rounded value)";
  List.iter
    (fun (run : C.dataset_run) ->
      let tally = Hashtbl.create 8 in
      List.iter
        (fun t ->
          match t.C.timer with
          | Some d ->
              (* Round to the nearest 20 ms bucket. *)
              let ms =
                int_of_float (Tdat_timerange.Time_us.to_ms d.Detect_timer.timer)
              in
              let v = (ms + 10) / 20 * 20 in
              Hashtbl.replace tally v
                (1 + Option.value ~default:0 (Hashtbl.find_opt tally v))
          | None -> ())
        run.C.transfers;
      let entries =
        Hashtbl.fold (fun v n acc -> (v, n) :: acc) tally []
        |> List.sort (fun (va, na) (vb, nb) ->
               match Int.compare va vb with 0 -> Int.compare na nb | c -> c)
      in
      Printf.printf "  %-18s %s\n"
        (Fleet.name run.C.dataset)
        (String.concat "  "
           (List.map (fun (v, n) -> Printf.sprintf "%dms x%d" v n) entries)))
    (C.all ())

(* ---------------------------------------------------------------------- *)
(* Table V: identified problems and average induced delay                  *)
(* ---------------------------------------------------------------------- *)

let table5 () =
  header "Table V: identified problems and average induced delays";
  let paper = function
    | Fleet.Isp_vendor -> (10396, (857, 7.31), (2092, 5.14), (8, 134.53))
    | Fleet.Isp_quagga -> (436, (74, 16.25), (176, 4.52), (8, 129.72))
    | Fleet.Routeviews -> (94, (7, 19.40), (29, 31.15), (3, 94.37))
  in
  List.iter
    (fun (run : C.dataset_run) ->
      let ts = run.C.transfers in
      let n = List.length ts in
      let total_p, (g_n, g_d), (c_n, c_d), (b_n, b_d) = paper run.C.dataset in
      let timers = List.filter (fun t -> t.C.timer <> None) ts in
      let timer_delay =
        match timers with
        | [] -> 0.
        | _ ->
            Tdat_stats.Descriptive.mean
              (List.map
                 (fun t ->
                   match t.C.timer with
                   | Some d ->
                       Tdat_timerange.Time_us.to_s d.Detect_timer.induced_delay
                   | None -> 0.)
                 timers)
      in
      let consec8 = List.filter (fun t -> fst t.C.consec8 > 0) ts in
      let consec4 = List.filter (fun t -> t.C.consec4 > 0) ts in
      let consec_delay sample =
        match sample with
        | [] -> 0.
        | _ ->
            Tdat_stats.Descriptive.mean
              (List.map
                 (fun t -> Tdat_timerange.Time_us.to_s (snd t.C.consec8))
                 sample)
      in
      let blocked = List.filter (fun t -> t.C.blocked_delay > 0) ts in
      let blocked_delay =
        match blocked with
        | [] -> 0.
        | _ ->
            Tdat_stats.Descriptive.mean
              (List.map
                 (fun t -> Tdat_timerange.Time_us.to_s t.C.blocked_delay)
                 blocked)
      in
      sub (Fleet.name run.C.dataset);
      Printf.printf "  transfers: paper %d, measured %d\n" total_p n;
      Printf.printf
        "  gaps in transfers:    paper %4d (%6.2f s avg)   measured %4d (%6.2f s avg)\n"
        g_n g_d (List.length timers) timer_delay;
      Printf.printf
        "  consecutive losses:   paper %4d (%6.2f s avg)   measured %4d@8 / %d@4 (%6.2f s avg)\n"
        c_n c_d (List.length consec8) (List.length consec4)
        (consec_delay (if consec8 <> [] then consec8 else consec4));
      Printf.printf
        "  peer-group blocking:  paper %4d (%6.2f s avg)   measured %4d (%6.2f s avg)\n"
        b_n b_d (List.length blocked) blocked_delay;
      let zero = List.filter (fun t -> t.C.zero_bug <> None) ts in
      Printf.printf "  zero-window ack bug conflicts: %d transfer(s)\n"
        (List.length zero))
    (C.all ())

(* ---------------------------------------------------------------------- *)
(* Table VI: analysis tool-suite performance                               *)
(* ---------------------------------------------------------------------- *)

let table6 () =
  header "Table VI: analysis tool suite / processing performance";
  Printf.printf
    "paper: Perl prototype, ~5500 LoC; processes the 47 GB RV trace in 64\n\
    \       minutes (~26 s per TCP connection on average)\n\
     measured (this OCaml implementation):\n";
  (* Measure the pure analysis phase on a medium connection trace. *)
  let result =
    Scenario.run ~seed:6006
      [ Scenario.router ~table_prefixes:20_000 ~timer_interval:100_000 ~quota:50 1 ]
  in
  let o = List.hd result.Scenario.outcomes in
  let reps = 50 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore
      (Analyzer.analyze o.Scenario.trace ~flow:o.Scenario.flow
         ~mrt:o.Scenario.mrt)
  done;
  let per_conn = (Unix.gettimeofday () -. t0) /. float_of_int reps in
  Printf.printf
    "  full pipeline on a %d-packet connection: %.1f ms per connection\n"
    (Tdat_pkt.Trace.length o.Scenario.trace)
    (1000. *. per_conn);
  Printf.printf
    "  (run `bench/main.exe speed` for per-stage Bechamel microbenchmarks)\n"

let registry =
  [
    ("table1", table1);
    ("fig3", fig3);
    ("fig4", fig4);
    ("table2", table2);
    ("fig5", fig5);
    ("fig6_table3", fig6_table3);
    ("fig7_8", fig7_8);
    ("fig9", fig9);
    ("fig11", fig11);
    ("fig13", fig13);
    ("fig14", fig14);
    ("table4", table4);
    ("fig15", fig15);
    ("fig16", fig16);
    ("fig17", fig17);
    ("table5", table5);
    ("table6", table6);
  ]
