(* Reproduction harness: regenerates every table and figure of the paper
   from the synthetic datasets.

   Usage:
     bench/main.exe                 run every experiment
     bench/main.exe <name> ...      run selected experiments (see list)
     bench/main.exe speed           Bechamel microbenchmarks
     bench/main.exe --scale 0.2     scale the dataset sizes (faster runs)
     bench/main.exe --baseline p    alloc budget file for perf_gate
     bench/main.exe --list          list experiment names *)

let registry =
  Experiments.registry @ Ablations.registry @ Scaling.registry
  @ Perf_gate.registry @ Serve_load.registry

let usage () =
  print_endline "experiments:";
  List.iter (fun (n, _) -> Printf.printf "  %s\n" n) registry;
  print_endline "  speed"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse todo = function
    | [] -> List.rev todo
    | "--list" :: _ ->
        usage ();
        exit 0
    | "--scale" :: v :: rest ->
        Dataset_cache.scale_ref := float_of_string v;
        parse todo rest
    | "--baseline" :: v :: rest ->
        Perf_gate.baseline := v;
        parse todo rest
    | x :: rest -> parse (x :: todo) rest
  in
  let selected = parse [] args in
  let t0 = Unix.gettimeofday () in
  (match selected with
  | [] ->
      List.iter (fun (_, f) -> f ()) registry;
      Speed.run ()
  | [ "speed" ] -> Speed.run ()
  | names ->
      List.iter
        (fun name ->
          if name = "speed" then Speed.run ()
          else
            match List.assoc_opt name registry with
            | Some f -> f ()
            | None ->
                Printf.eprintf "unknown experiment %S\n" name;
                usage ();
                exit 1)
        names);
  Printf.printf "\n[bench] total wall time: %.1f s\n"
    (Unix.gettimeofday () -. t0)
