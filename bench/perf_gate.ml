(* Allocation regression gate (`dune build @perf-gate`, wired into
   `dune runtest`).

   The allocation-light refactor's headline numbers — minor words per
   packet on the analyze and decode paths — are protected by explicit
   budgets in bench/alloc_baseline.json.  The gate replays a small
   deterministic fleet at jobs=1 (no worker domains, so [Gc.minor_words]
   sees every allocation) and fails the build when a path exceeds its
   budget.  Budgets carry ~50% headroom over the measured steady state:
   they catch a reintroduced per-packet list pipeline or string copy
   (integer factors), not micro-noise.

   The gate's own correctness is covered by a negative test
   (test/test_equiv.ml): run against a deliberately tightened baseline,
   it must fail. *)

module Trace = Tdat_pkt.Trace

let baseline = ref "bench/alloc_baseline.json"

(* Minimal one-key-per-line JSON number extraction, so the gate needs no
   JSON dependency.  Budget files are machine-written and flat. *)
let budget_of data key =
  let needle = "\"" ^ key ^ "\"" in
  let nlen = String.length needle in
  let len = String.length data in
  let rec find i =
    if i + nlen > len then None
    else if String.sub data i nlen = needle then Some (i + nlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some p ->
      let p = ref p in
      while !p < len && (data.[!p] = ':' || data.[!p] = ' ') do
        incr p
      done;
      let q = ref !p in
      while
        !q < len
        && (match data.[!q] with
           | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
           | _ -> false)
      do
        incr q
      done;
      if !q = !p then None
      else float_of_string_opt (String.sub data !p (!q - !p))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Minor words allocated by [f], after one warm-up run so one-time heap
   and code-path costs (pool setup, scratch growth) are excluded. *)
let minor_per_packet ~packets f =
  ignore (f ());
  let m0 = Gc.minor_words () in
  ignore (f ());
  (Gc.minor_words () -. m0) /. float_of_int packets

let run () =
  let data =
    try read_file !baseline
    with Sys_error e ->
      Printf.eprintf "[perf-gate] cannot read baseline %s: %s\n" !baseline e;
      exit 2
  in
  let trace = Scaling.fleet_trace ~sessions:2 ~prefixes:3_000 ~seed:7 in
  let packets = Trace.length trace in
  let analyze =
    minor_per_packet ~packets (fun () ->
        Tdat.Analyzer.analyze_all ~jobs:1 trace)
  in
  let pcap = Tdat_pkt.Pcap.encode trace in
  let decode =
    minor_per_packet ~packets (fun () -> Tdat_pkt.Pcap.decode_result pcap)
  in
  let failures = ref 0 in
  let check name measured =
    match budget_of data name with
    | None ->
        Printf.eprintf "[perf-gate] baseline %s lacks key %S\n" !baseline name;
        incr failures
    | Some budget ->
        let ok = measured <= budget in
        Printf.printf "[perf-gate] %-36s %8.1f  (budget %8.1f)  %s\n" name
          measured budget
          (if ok then "ok" else "FAIL");
        if not ok then incr failures
  in
  Printf.printf "[perf-gate] fleet: %d packets, baseline %s\n%!" packets
    !baseline;
  check "analyze_minor_words_per_packet_max" analyze;
  check "decode_minor_words_per_packet_max" decode;
  if !failures > 0 then begin
    Printf.eprintf
      "[perf-gate] %d budget(s) exceeded: the hot path allocates more per \
       packet than bench/alloc_baseline.json allows.  If the regression is \
       intentional, re-baseline with the new measured numbers.\n"
      !failures;
    exit 1
  end

let registry = [ ("perf_gate", run) ]
