(* serve_load: drive an in-process `tdat serve` daemon with N client
   domains x M synthetic captures and report throughput, latency
   percentiles, and the cache's cold/warm speedup to BENCH_SERVE.json
   (the serve-layer counterpart of BENCH_SPEED.json).

   Also the end-to-end byte-identity check: every analyze response's
   "output" member is compared against the batch renderer
   (Tdat_serve.Render.analysis) over the same file — exactly what
   `tdat analyze` prints — so a drift between daemon and CLI output
   fails the bench. *)

module Scenario = Tdat_bgpsim.Scenario
module Server = Tdat_serve.Server
module Client = Tdat_serve.Client
module Json = Tdat_serve.Json

let clients = 4
let requests_per_client = 12

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let mean a =
  if Array.length a = 0 then 0.
  else Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

(* Three captures of different sizes, so cache keys differ and the
   round-robin load mixes small and large requests. *)
let write_captures dir =
  List.mapi
    (fun i prefixes ->
      let result =
        Scenario.run ~seed:(101 + i)
          [ Scenario.router ~table_prefixes:prefixes 1 ]
      in
      let path = Filename.concat dir (Printf.sprintf "cap%d.pcap" i) in
      Tdat_pkt.Pcap.to_file path result.Scenario.site_trace;
      path)
    [ 4000; 6000; 8000 ]

let analyze_request path =
  Json.Obj [ ("cmd", Json.Str "analyze"); ("path", Json.Str path) ]

let response_output resp =
  match Json.member "result" resp with
  | Some result -> (
      match Json.member "output" result with
      | Some o -> Json.to_string_opt o
      | None -> None)
  | None -> None

let response_ok resp =
  match Json.member "ok" resp with
  | Some (Json.Bool b) -> b
  | _ -> false

let jfloat json name =
  match Json.member name json with
  | Some v -> Option.value (Json.to_float_opt v) ~default:0.
  | None -> 0.

(* The daemon's own view of the load it just absorbed: the rolling
   window for the analyze endpoint and the exemplar count, straight
   from a [stats] round-trip before the drain. *)
let query_rolling address =
  let client = Client.connect address in
  let resp =
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () -> Client.rpc client (Json.Obj [ ("cmd", Json.Str "stats") ]))
  in
  match resp with
  | Error _ -> None
  | Ok r -> (
      match Json.member "result" r with
      | None -> None
      | Some result ->
          let window =
            match Json.member "windows" result with
            | Some w -> Json.member "analyze" w
            | None -> None
          in
          let exemplars =
            match Json.member "exemplars" result with
            | Some (Json.Arr l) -> List.length l
            | Some _ | None -> 0
          in
          Some (window, exemplars))

(* The reference output: what `tdat analyze <path>` prints (the CLI
   calls this exact renderer). *)
let batch_output path =
  let r = Tdat_pkt.Pcap.read_file path in
  let results =
    Tdat.Analyzer.analyze_all ~jobs:1 r.Tdat_pkt.Pcap.trace
  in
  Tdat_serve.Render.analysis results

let timed_rpc client req =
  let t0 = Unix.gettimeofday () in
  let resp = Client.rpc client req in
  let dt_us = (Unix.gettimeofday () -. t0) *. 1e6 in
  (resp, dt_us)

let run () =
  Printf.printf "\n[serve_load] %d clients x %d requests, 3 captures\n%!"
    clients requests_per_client;
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tdat_serve_load_%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let paths = write_captures dir in
  let server =
    Server.start
      {
        Server.default_config with
        address = `Tcp ("127.0.0.1", 0);
        jobs = 4;
        queue_capacity = 128;
        cache_capacity = 8;
      }
  in
  let address = Server.address server in
  let errors = ref 0 in
  let byte_identical = ref true in
  (* Cold pass: every capture decodes from disk (cache miss), and its
     output is byte-compared against the batch renderer. *)
  let cold_client = Client.connect address in
  let cold_us =
    Array.of_list
      (List.map
         (fun path ->
           let resp, dt_us = timed_rpc cold_client (analyze_request path) in
           (match resp with
           | Ok r when response_ok r ->
               if response_output r <> Some (batch_output path) then begin
                 byte_identical := false;
                 Printf.printf "[serve_load] OUTPUT MISMATCH on %s\n%!" path
               end
           | Ok _ | Error _ -> incr errors);
           dt_us)
         paths)
  in
  (* Warm pass: same requests again, now cache hits. *)
  let warm_us =
    Array.of_list
      (List.map
         (fun path ->
           let resp, dt_us = timed_rpc cold_client (analyze_request path) in
           (match resp with
           | Ok r when response_ok r -> ()
           | Ok _ | Error _ -> incr errors);
           dt_us)
         paths)
  in
  Client.close cold_client;
  (* Load phase: [clients] domains, each its own connection, walking
     the captures round-robin. *)
  let path_arr = Array.of_list paths in
  let t_load0 = Unix.gettimeofday () in
  let worker c =
    let client = Client.connect address in
    let lat = Array.make requests_per_client 0. in
    let failed = ref 0 in
    for i = 0 to requests_per_client - 1 do
      let path = path_arr.((c + i) mod Array.length path_arr) in
      let resp, dt_us = timed_rpc client (analyze_request path) in
      (match resp with
      | Ok r when response_ok r -> ()
      | Ok _ | Error _ -> incr failed);
      lat.(i) <- dt_us
    done;
    Client.close client;
    (lat, !failed)
  in
  let domains =
    List.init clients (fun c -> Domain.spawn (fun () -> worker c))
  in
  let per_client = List.map Domain.join domains in
  let wall_s = Unix.gettimeofday () -. t_load0 in
  List.iter (fun (_, failed) -> errors := !errors + failed) per_client;
  let latencies = Array.concat (List.map fst per_client) in
  Array.sort Float.compare latencies;
  let total_requests = Array.length latencies in
  let throughput = float_of_int total_requests /. wall_s in
  let rolling = query_rolling address in
  (* Graceful drain, then clean up the temp captures. *)
  Server.stop server;
  Server.wait server;
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths;
  (try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ());
  let p50 = percentile latencies 50.
  and p95 = percentile latencies 95.
  and p99 = percentile latencies 99. in
  let cold_mean = mean cold_us and warm_mean = mean warm_us in
  let speedup = if warm_mean > 0. then cold_mean /. warm_mean else 0. in
  Printf.printf
    "[serve_load] %d requests in %.2f s (%.1f req/s)\n\
     [serve_load] latency p50 %.0f us  p95 %.0f us  p99 %.0f us\n\
     [serve_load] cache cold %.0f us -> warm %.0f us (%.1fx)\n\
     [serve_load] byte-identical output: %b, errors: %d\n%!"
    total_requests wall_s throughput p50 p95 p99 cold_mean warm_mean speedup
    !byte_identical !errors;
  (match rolling with
  | Some (Some w, exemplars) ->
      Printf.printf
        "[serve_load] rolling(analyze, last %.0fs): %d req  p50 %.0f us  \
         p95 %.0f us  p99 %.0f us  (%d exemplars)\n\
         %!"
        (jfloat w "window_s")
        (int_of_float (jfloat w "count"))
        (jfloat w "p50_us") (jfloat w "p95_us") (jfloat w "p99_us") exemplars
  | Some (None, _) | None ->
      Printf.printf "[serve_load] rolling window stats unavailable\n%!";
      incr errors);
  let oc = open_out "BENCH_SERVE.json" in
  Printf.fprintf oc
    "{\n\
    \  \"label\": \"serve_load\",\n\
    \  \"clients\": %d,\n\
    \  \"requests_per_client\": %d,\n\
    \  \"captures\": %d,\n\
    \  \"jobs\": 4,\n\
    \  \"total_requests\": %d,\n\
    \  \"wall_s\": %.4f,\n\
    \  \"throughput_rps\": %.2f,\n\
    \  \"latency_us\": { \"p50\": %.0f, \"p95\": %.0f, \"p99\": %.0f },\n\
    \  \"cache\": { \"cold_mean_us\": %.0f, \"warm_mean_us\": %.0f, \
     \"speedup\": %.2f },\n"
    clients requests_per_client (List.length paths) total_requests wall_s
    throughput p50 p95 p99 cold_mean warm_mean speedup;
  (match rolling with
  | Some (Some w, exemplars) ->
      Printf.fprintf oc
        "  \"rolling\": { \"endpoint\": \"analyze\", \"window_s\": %.0f, \
         \"count\": %.0f, \"rps\": %.2f, \"p50_us\": %.0f, \"p95_us\": %.0f, \
         \"p99_us\": %.0f, \"exemplars\": %d },\n"
        (jfloat w "window_s") (jfloat w "count") (jfloat w "rps")
        (jfloat w "p50_us") (jfloat w "p95_us") (jfloat w "p99_us") exemplars
  | Some (None, _) | None -> ());
  Printf.fprintf oc
    "  \"byte_identical\": %b,\n\
    \  \"errors\": %d\n\
     }\n"
    !byte_identical !errors;
  close_out oc;
  Printf.printf "[serve_load] wrote BENCH_SERVE.json\n%!"

let registry = [ ("serve_load", run) ]
